"""The Strober job daemon: a supervised asyncio front door for
``run_strober``.

One single-process service owns a bounded job queue and runs each
admitted job through the existing flow — FAME simulation, snapshot
sampling, supervised gate-level replay, energy estimation — on a
worker thread, with the event loop free to answer status queries,
admit or reject new work, and watch deadlines the whole time.

Robustness model, layer by layer:

* **Admission control** — a full queue rejects with a typed
  ``queue-full`` error *before* the job costs anything; a draining
  daemon rejects with ``draining``.  Accepted jobs are journaled
  (CRC-framed, fsync'd) before the acknowledgement is sent, so an
  acknowledged job survives a daemon kill.
* **Deadlines** — a job's wall-clock budget spans all its attempts;
  exceeding it is terminal (``deadline-exceeded``), and the abandoned
  worker thread cannot wedge the queue because every job gets its own
  single-thread executor.
* **Retries** — recoverable faults (worker crashes the supervisor
  could not absorb, transient infrastructure errors) retry with
  full-jitter exponential backoff; deterministic failures (replay
  mismatch, snapshot corruption, workload exit) never retry.
* **Circuit breakers** — per-design crash accounting demotes the
  gate-level backend down the ``c -> compiled -> interp`` ladder and
  quarantines the suspect compiled kernel (see
  :mod:`repro.service.breaker`).  The supervisor's in-process serial
  fallback is always pinned to ``interp`` so a poisoned shared object
  is never loaded into the daemon's own address space by the fallback
  path.
* **Crash-safe resume** — a killed daemon restarted on the same state
  directory re-admits every unfinished journaled job in order, and
  each job's own run journal lets ``run_strober`` skip the simulation
  and every finished replay.
* **Graceful drain** — SIGTERM (or the ``drain`` command) stops
  admission, finishes the queue, and leaves the daemon answering
  status queries; ``shutdown`` exits once drained.

Concurrency note: jobs for the *same design* are serialized on an
in-process lock no matter what ``max_running`` says — the flow caches
one circuit pair and one replay engine per design, both stateful, so
two concurrent same-design runs in one process would corrupt each
other's simulation state (a job's deadline therefore also covers time
spent waiting for its design's lock).  Jobs for *different* designs
share nothing stateful and genuinely overlap.  ``max_running`` still
defaults to 1 because ``run_strober`` installs a process-global tracer
for the duration of a run — with more than one job running, span
*attribution* between concurrent jobs can interleave (results are
unaffected; the metrics registry is global either way).  Concurrent
*submission* is always fine.
"""

from __future__ import annotations

import asyncio
import collections
import contextlib
import functools
import itertools
import os
import random
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from ..core.flow import run_strober
from ..obs import Tracer, get_registry
from ..obs.prom import (
    PROM_CONTENT_TYPE, Sample, process_health_samples,
    render_exposition,
)
from .breaker import BreakerBoard, quarantine_compiled_kernel
from .protocol import (
    JobSpec, ServiceError, decode_line, encode_line, ok_response,
    error_response, MAX_LINE_BYTES,
    ERR_INVALID_REQUEST, ERR_QUEUE_FULL, ERR_DRAINING, ERR_UNKNOWN_JOB,
    ERR_DEADLINE, ERR_CANCELLED, ERR_INTERNAL,
)
from .state import ServiceJournal, load_service_state, result_digest

_METRIC_PREFIXES = ("service.", "supervisor.", "cache.", "sampling.",
                    "journal.")

# Per-job wall-clock latency buckets (seconds): sized for this repo's
# scaled workloads — sub-second smoke jobs up to multi-minute sweeps.
_JOB_SECONDS_BUCKETS = (0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
                        60.0, 120.0, 300.0)


@dataclass
class ServiceConfig:
    """Everything a daemon instance is allowed to decide up front."""

    state_dir: str
    unix_socket: str = None       # preferred transport when set
    host: str = "127.0.0.1"
    port: int = 0                 # 0 = ephemeral (read it back off
                                  # ``StroberService.address``)
    max_queue: int = 16
    max_running: int = 1
    job_retries: int = 2
    retry_backoff_s: float = 0.25
    default_deadline_s: float = None
    default_gl_backend: str = None
    breaker_threshold: int = 2
    breaker_cooldown_s: float = None
    trace_dir: str = None         # per-job Chrome traces when set
    metrics_port: int = None      # plain-HTTP /metrics scrape port
                                  # (0 = ephemeral; None = no listener —
                                  # the ``metrics`` protocol command
                                  # works either way)


class Job:
    """In-memory state of one job, mutated only by the event loop and
    (for span telemetry) the job's own worker thread."""

    def __init__(self, job_id, spec, submitted_at=None, resumed=False):
        self.id = job_id
        self.spec = spec
        self.state = "queued"     # queued|running|done|failed|cancelled
        self.resumed = resumed
        self.attempts = 0
        self.backends = []        # effective backend per attempt
        self.demotions = []       # breaker events this job triggered
        self.crashes = 0          # worker crashes absorbed across attempts
        self.error = None         # typed error dict when failed
        self.digest = None        # result_digest when done
        self.summary = None       # energy/timing summary when done
        self.submitted_at = submitted_at or time.time()
        self.started_at = None
        self.finished_at = None
        self.last_phase = None    # most recent closed phase span
        self.span_count = 0
        self.progress = None      # latest controller.* decision args
        self.cancel_requested = False
        self.done = asyncio.Event()

    @property
    def terminal(self):
        return self.state in ("done", "failed", "cancelled")

    def info(self):
        return {
            "id": self.id, "state": self.state, "resumed": self.resumed,
            "spec": self.spec.as_dict(), "attempts": self.attempts,
            "backends": list(self.backends),
            "demotions": list(self.demotions),
            "crashes": self.crashes,
            "error": self.error, "digest": self.digest,
            "summary": self.summary,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "last_phase": self.last_phase,
            "spans": self.span_count,
            "progress": self.progress,
        }


class StroberService:
    """The daemon.  ``await start()`` inside a running loop, then
    ``await wait_stopped()`` (or drive it from
    :class:`repro.service.harness.ServiceHarness`)."""

    def __init__(self, config):
        self.config = config
        self.state = "starting"   # serving|draining|drained|stopped
        self.jobs = {}
        self._queue = collections.deque()
        self._running = {}        # job id -> asyncio.Task
        self.breakers = BreakerBoard(
            threshold=config.breaker_threshold,
            cooldown_s=config.breaker_cooldown_s)
        self._journal = None
        self._next_job_number = 1
        self._wake = asyncio.Event()
        self._drained = asyncio.Event()
        self._stopped = asyncio.Event()
        self._exit_when_drained = False
        self._scheduler_task = None
        self._server = None
        self._metrics_server = None
        self._started_at = None
        self._design_locks = {}   # design -> threading.Lock
        self._last_span = None
        self._resumed_pending = 0
        self._skipped_records = 0

    # -- paths -------------------------------------------------------

    @property
    def jobs_journal_path(self):
        return os.path.join(self.config.state_dir, "jobs.journal")

    @property
    def runs_dir(self):
        return os.path.join(self.config.state_dir, "runs")

    def _run_journal_path(self, job_id):
        return os.path.join(self.runs_dir, f"{job_id}.journal")

    # -- lifecycle ---------------------------------------------------

    async def start(self):
        os.makedirs(self.config.state_dir, exist_ok=True)
        os.makedirs(self.runs_dir, exist_ok=True)
        if self.config.trace_dir:
            os.makedirs(self.config.trace_dir, exist_ok=True)
        self._recover()
        self._journal = ServiceJournal(self.jobs_journal_path).open()
        if self.config.unix_socket:
            with contextlib.suppress(FileNotFoundError):
                os.unlink(self.config.unix_socket)
            self._server = await asyncio.start_unix_server(
                self._handle_client, path=self.config.unix_socket,
                limit=MAX_LINE_BYTES + 2)
        else:
            self._server = await asyncio.start_server(
                self._handle_client, host=self.config.host,
                port=self.config.port, limit=MAX_LINE_BYTES + 2)
        if self.config.metrics_port is not None:
            # A second, HTTP-speaking listener so a stock Prometheus
            # scraper needs no knowledge of the line protocol.
            self._metrics_server = await asyncio.start_server(
                self._handle_metrics_http, host=self.config.host,
                port=self.config.metrics_port)
        self._scheduler_task = asyncio.create_task(self._scheduler())
        self._started_at = time.time()
        self.state = "serving"
        get_registry().counter("service.starts").inc()
        return self

    def _recover(self):
        """Rebuild the queue from the jobs journal (killed daemon)."""
        import warnings
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            recovered = load_service_state(self.jobs_journal_path)
        self._next_job_number = recovered.next_job_number
        self._skipped_records = recovered.skipped_records
        for job_id, record in recovered.accepted.items():
            update = recovered.finished.get(job_id)
            try:
                spec = JobSpec.from_dict(record["spec"])
            except ServiceError as exc:
                # A journaled spec this daemon cannot parse (written by
                # a newer daemon): surface it as failed, don't run it.
                if update is None:
                    job = Job(job_id, _OpaqueSpec(record["spec"]),
                              submitted_at=record.get("submitted_at"),
                              resumed=True)
                    job.state = "failed"
                    job.error = exc.as_dict()
                    job.done.set()
                    self.jobs[job_id] = job
                continue
            job = Job(job_id, spec,
                      submitted_at=record.get("submitted_at"),
                      resumed=True)
            if update is not None:
                job.state = update["state"]
                job.error = update.get("error")
                job.digest = update.get("digest")
                job.summary = update.get("summary")
                job.finished_at = update.get("finished_at")
                job.done.set()
            else:
                self._queue.append(job_id)
                self._resumed_pending += 1
            self.jobs[job_id] = job
        get_registry().counter("service.jobs_resumed").inc(
            self._resumed_pending)

    def begin_drain(self, stop=False):
        """Stop admission; finish the queue.  ``stop=True`` also exits
        once drained (the SIGTERM path)."""
        if stop:
            self._exit_when_drained = True
        if self.state == "serving":
            self.state = "draining"
        self._wake.set()

    async def wait_drained(self):
        await self._drained.wait()

    async def wait_stopped(self):
        await self._stopped.wait()

    @property
    def address(self):
        """Where clients connect, with the real (post-bind) port."""
        if self.config.unix_socket:
            return {"family": "unix", "path": self.config.unix_socket}
        host, port = self._server.sockets[0].getsockname()[:2]
        return {"family": "tcp", "host": host, "port": port}

    @property
    def metrics_address(self):
        """``(host, port)`` of the /metrics listener, or None."""
        if self._metrics_server is None:
            return None
        host, port = (
            self._metrics_server.sockets[0].getsockname()[:2])
        return (host, port)

    # -- scheduler ---------------------------------------------------

    async def _scheduler(self):
        while True:
            self._wake.clear()
            while (self._queue and self.state in ("serving", "draining")
                   and len(self._running) < self.config.max_running):
                job = self.jobs[self._queue.popleft()]
                if job.cancel_requested:
                    self._finalize(job, "cancelled", error=ServiceError(
                        ERR_CANCELLED, "cancelled while queued"))
                    continue
                task = asyncio.create_task(self._run_job(job))
                self._running[job.id] = task
            if (self.state == "draining" and not self._queue
                    and not self._running):
                self.state = "drained"
                self._drained.set()
            if self.state == "drained" and self._exit_when_drained:
                break
            await self._wake.wait()
        await self._stop()

    async def _stop(self):
        self._server.close()
        with contextlib.suppress(Exception):
            await self._server.wait_closed()
        if self._metrics_server is not None:
            self._metrics_server.close()
            with contextlib.suppress(Exception):
                await self._metrics_server.wait_closed()
        if self.config.unix_socket:
            with contextlib.suppress(OSError):
                os.unlink(self.config.unix_socket)
        self._journal.close()
        self.state = "stopped"
        self._stopped.set()

    # -- job execution -----------------------------------------------

    async def _run_job(self, job):
        spec = job.spec
        job.state = "running"
        job.started_at = time.time()
        retries = (spec.retries if spec.retries is not None
                   else self.config.job_retries)
        deadline_s = (spec.deadline_s if spec.deadline_s is not None
                      else self.config.default_deadline_s)
        deadline_at = (time.monotonic() + deadline_s
                       if deadline_s else None)
        # One plan per job: sabotage budgets are consumed across
        # attempts, so a retried job does not re-arm its own faults.
        plan = spec.fault_plan()
        try:
            attempt = 0
            while True:
                attempt += 1
                job.attempts = attempt
                requested = (spec.gl_backend
                             or self.config.default_gl_backend)
                backend = self.breakers.effective(spec.design, requested)
                job.backends.append(backend or "auto")
                try:
                    run = await self._run_attempt(job, backend, plan,
                                                  deadline_at)
                except ServiceError as exc:
                    error = exc
                else:
                    crashes = _crash_count(run.health)
                    if crashes:
                        job.crashes += crashes
                        await self._charge_breaker(
                            job, spec.design, backend, crashes)
                    self._finalize(job, "done", run=run)
                    return
                if error.retryable:
                    await self._charge_breaker(job, spec.design, backend,
                                               1, reason=error.type)
                out_of_time = (deadline_at is not None
                               and time.monotonic() >= deadline_at)
                if (not error.retryable or attempt > retries
                        or job.cancel_requested or out_of_time):
                    if job.cancel_requested and error.retryable:
                        error = ServiceError(ERR_CANCELLED,
                                             "cancelled between attempts")
                    self._finalize(job, "failed", error=error)
                    return
                # Full-jitter exponential backoff: expected spacing
                # still doubles per attempt, but a burst of failed jobs
                # cannot re-converge onto one retry instant.
                cap = self.config.retry_backoff_s * (2 ** (attempt - 1))
                await asyncio.sleep(random.uniform(0.0, cap))
        except Exception as exc:   # the scheduler must never wedge
            self._finalize(job, "failed", error=ServiceError(
                ERR_INTERNAL, f"{type(exc).__name__}: {exc}"))
        finally:
            self._running.pop(job.id, None)
            self._wake.set()

    async def _run_attempt(self, job, backend, plan, deadline_at):
        """One ``run_strober`` on a dedicated worker thread.

        The thread gets its own single-slot executor so a
        deadline-abandoned attempt strands *its* thread, not a shared
        pool — the queue keeps moving no matter how wedged the
        abandoned work is.  The in-process serial fallback is pinned
        to ``interp``: the daemon never executes a possibly-poisoned
        compiled kernel in its own process on the recovery path.

        Attempts hold their design's lock for the duration of the run:
        the cached circuit pair and replay engine are per-design and
        stateful, so two same-design runs in one process must never
        overlap (see the module docstring's concurrency note).
        """
        spec = job.spec
        design_lock = self._design_locks.setdefault(spec.design,
                                                    threading.Lock())
        trace_path = (os.path.join(self.config.trace_dir,
                                   f"{job.id}.trace.json")
                      if self.config.trace_dir else None)
        # job_id stamps every span the attempt records — replay worker
        # processes included (the supervisor ships the correlation in
        # its spawn payload) — so a trace directory full of jobs stays
        # joinable; the flow adds run_key to the same dict.
        tracer = Tracer(distributed=trace_path is not None,
                        on_span=functools.partial(self._on_span, job),
                        on_event=functools.partial(self._on_event, job),
                        correlation={"job_id": job.id})
        kwargs = spec.run_kwargs()

        def work():
            with design_lock:
                return run_strober(
                    spec.design, spec.workload,
                    journal=self._run_journal_path(job.id),
                    gl_backend=backend, serial_gl_backend="interp",
                    fault_plan=plan, tracer=tracer, trace=trace_path,
                    **kwargs)

        loop = asyncio.get_running_loop()
        pool = ThreadPoolExecutor(max_workers=1,
                                  thread_name_prefix=f"strober-{job.id}")
        future = loop.run_in_executor(pool, work)
        pool.shutdown(wait=False)
        timeout = (None if deadline_at is None
                   else max(0.001, deadline_at - time.monotonic()))
        try:
            return await asyncio.wait_for(future, timeout)
        except asyncio.TimeoutError:
            get_registry().counter("service.deadline_exceeded").inc()
            raise ServiceError(
                ERR_DEADLINE,
                f"job {job.id} exceeded its deadline "
                f"({_fmt_seconds(deadline_at, job)}); the attempt was "
                f"abandoned on its own thread")
        except Exception as exc:
            raise _classify(exc)

    async def _charge_breaker(self, job, design, backend, count,
                              reason="worker-crash"):
        event = self.breakers.record_failure(design, backend or "auto",
                                             count=count, reason=reason)
        if event is None:
            return
        get_registry().counter("service.demotions").inc()
        if event["from"] == "c":
            # The cached shared object is now a suspect: pull it out
            # of circulation (kept under <cache>/quarantine/ for
            # inspection).  Runs in the default executor because key
            # derivation may touch the artifact cache.
            loop = asyncio.get_running_loop()
            event["quarantined"] = await loop.run_in_executor(
                None, quarantine_compiled_kernel, design)
        job.demotions.append(event)

    def _finalize(self, job, state, run=None, error=None):
        job.state = state
        job.finished_at = time.time()
        if job.started_at is not None:
            # Wall-clock across all attempts, lock waits included —
            # the latency a client actually observed.
            get_registry().histogram(
                "service.job_seconds", _JOB_SECONDS_BUCKETS).observe(
                job.finished_at - job.started_at)
        if run is not None:
            job.digest = result_digest(run.replays)
            job.summary = _summarize(run)
            get_registry().counter("service.jobs_done").inc()
        if error is not None:
            job.error = error.as_dict()
            get_registry().counter("service.jobs_failed").inc()
        self._journal.job_finished(job.id, state, error=job.error,
                                   digest=job.digest,
                                   summary=job.summary)
        job.done.set()

    def _on_span(self, job, record):
        # Runs on the job's worker thread as each span closes: the
        # live feed behind /status.  Attribute updates only — anything
        # heavier belongs on the loop.
        job.span_count += 1
        if record.cat == "phase":
            job.last_phase = record.name
        self._last_span = {"job": job.id, "name": record.name,
                           "cat": record.cat,
                           "dur": round(record.dur, 6)}

    def _on_event(self, job, event):
        # Same live feed, for instant events: the adaptive sampling
        # controller's decisions surface in job status mid-run.
        name = event.get("name", "")
        if not name.startswith("controller."):
            return
        kind = name.split("controller.", 1)[1]
        if kind not in ("dispatch", "progress", "cancel", "stop"):
            return
        info = {"event": kind}
        info.update(event.get("args") or {})
        job.progress = info

    # -- the socket protocol -----------------------------------------

    async def _handle_client(self, reader, writer):
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(encode_line(error_response(
                        (ERR_INVALID_REQUEST, "request line too long"))))
                    await writer.drain()
                    break
                if not line:
                    break    # client went away; its jobs keep running
                try:
                    response = await self._dispatch(decode_line(line))
                except ServiceError as exc:
                    response = error_response(exc)
                except Exception as exc:
                    response = error_response((
                        ERR_INTERNAL,
                        f"{type(exc).__name__}: {exc}"))
                writer.write(encode_line(response))
                await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            # Daemon exiting with this connection still open: finish
            # the handler normally so loop teardown doesn't log the
            # cancelled task through the streams protocol callback.
            pass
        finally:
            writer.close()
            # CancelledError included: connection handlers alive at
            # daemon exit get cancelled mid-cleanup, which is fine.
            with contextlib.suppress(Exception, asyncio.CancelledError):
                await writer.wait_closed()

    async def _dispatch(self, request):
        cmd = request.get("cmd")
        handler = getattr(self, f"_cmd_{(cmd or '').replace('-', '_')}",
                          None)
        if not isinstance(cmd, str) or handler is None:
            raise ServiceError(ERR_INVALID_REQUEST,
                               f"unknown command {cmd!r}")
        return await handler(request)

    async def _cmd_ping(self, request):
        return ok_response(cmd="ping", state=self.state)

    async def _cmd_submit(self, request):
        if self.state != "serving":
            raise ServiceError(ERR_DRAINING,
                               f"daemon is {self.state}; not accepting "
                               f"new jobs")
        spec = JobSpec.from_dict(request.get("spec"))
        if len(self._queue) >= self.config.max_queue:
            get_registry().counter("service.rejected_full").inc()
            raise ServiceError(
                ERR_QUEUE_FULL,
                f"queue is full ({self.config.max_queue} job(s) "
                f"queued); retry after a slot frees up")
        job_id = f"job-{self._next_job_number:06d}"
        self._next_job_number += 1
        job = Job(job_id, spec)
        # Durable before acknowledged: once the client sees this id,
        # a daemon kill cannot lose the job.
        self._journal.job_accepted(job_id, spec.as_dict())
        self.jobs[job_id] = job
        self._queue.append(job_id)
        get_registry().counter("service.jobs_accepted").inc()
        self._wake.set()
        return ok_response(cmd="submit", job_id=job_id,
                           position=len(self._queue))

    def _job(self, request):
        job = self.jobs.get(request.get("id"))
        if job is None:
            raise ServiceError(ERR_UNKNOWN_JOB,
                               f"unknown job id {request.get('id')!r}")
        return job

    async def _cmd_job(self, request):
        return ok_response(cmd="job", job=self._job(request).info())

    async def _cmd_wait(self, request):
        job = self._job(request)
        timeout = request.get("timeout_s")
        done = True
        if timeout is None:
            await job.done.wait()
        else:
            try:
                await asyncio.wait_for(
                    asyncio.shield(job.done.wait()), float(timeout))
            except asyncio.TimeoutError:
                done = False
        return ok_response(cmd="wait", done=done, job=job.info())

    async def _cmd_cancel(self, request):
        job = self._job(request)
        if job.terminal:
            return ok_response(cmd="cancel", cancelled=False,
                               job=job.info())
        job.cancel_requested = True
        if job.state == "queued":
            with contextlib.suppress(ValueError):
                self._queue.remove(job.id)
            self._finalize(job, "cancelled", error=ServiceError(
                ERR_CANCELLED, "cancelled while queued"))
            self._wake.set()
            return ok_response(cmd="cancel", cancelled=True,
                               job=job.info())
        # Running: the current attempt finishes (or hits its
        # deadline); the job stops before any retry.
        return ok_response(cmd="cancel", cancelled=False,
                           pending=True, job=job.info())

    async def _cmd_status(self, request):
        return ok_response(cmd="status", status=self.status_snapshot())

    async def _cmd_metrics(self, request):
        return ok_response(cmd="metrics",
                           content_type=PROM_CONTENT_TYPE,
                           text=self.render_metrics())

    async def _cmd_drain(self, request):
        self.begin_drain(stop=False)
        return ok_response(cmd="drain", state=self.state)

    async def _cmd_shutdown(self, request):
        self.begin_drain(stop=True)
        return ok_response(cmd="shutdown", state=self.state)

    # -- metrics exposition ------------------------------------------

    def render_metrics(self):
        """The Prometheus text-format scrape page for this daemon.

        Refreshes the process-health gauges (uptime, queue depth, jobs
        in flight, RSS, open fds) at render time — a scrape always sees
        current levels — then renders the whole metrics registry plus
        the labeled per-design breaker series, which cannot live in
        the flat registry.
        """
        registry = get_registry()
        registry.gauge("service.uptime_seconds").set(
            time.time() - self._started_at if self._started_at else 0.0)
        registry.gauge("service.queue_depth").set(len(self._queue))
        registry.gauge("service.jobs_inflight").set(len(self._running))
        samples = list(process_health_samples())
        for design, info in sorted(self.breakers.snapshot().items()):
            samples.append(Sample(
                "service.breaker_floor_info", 1.0,
                labels={"design": design,
                        "floor": info.get("floor") or "none"},
                help="current gate-level backend floor per design "
                     "(info-style: the value is always 1; the floor "
                     "rides in the label)"))
            for backend, count in sorted(
                    (info.get("failures") or {}).items()):
                samples.append(Sample(
                    "service.breaker_failures", count,
                    labels={"design": design, "backend": backend},
                    help="breaker failure charges per design and "
                         "backend rung"))
        return render_exposition(registry=registry, samples=samples)

    async def _handle_metrics_http(self, reader, writer):
        """Minimal HTTP responder for the scrape port: ``GET /metrics``
        answers the exposition page; everything else is a 404.  Always
        ``Connection: close`` — scrapers reconnect per scrape and this
        keeps the handler stateless."""
        try:
            try:
                request_line = await reader.readline()
                while True:          # drain headers to the blank line
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
            except (asyncio.LimitOverrunError, ValueError):
                request_line = b""
            parts = request_line.decode("latin-1", "replace").split()
            method = parts[0] if parts else ""
            path = parts[1].split("?")[0] if len(parts) > 1 else ""
            if method == "GET" and path == "/metrics":
                body = self.render_metrics().encode()
                status, ctype = "200 OK", PROM_CONTENT_TYPE
            else:
                body = b"only GET /metrics lives here\n"
                status = "404 Not Found"
                ctype = "text/plain; charset=utf-8"
            writer.write(
                (f"HTTP/1.1 {status}\r\n"
                 f"Content-Type: {ctype}\r\n"
                 f"Content-Length: {len(body)}\r\n"
                 f"Connection: close\r\n"
                 f"\r\n").encode("latin-1") + body)
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            writer.close()
            with contextlib.suppress(Exception, asyncio.CancelledError):
                await writer.wait_closed()

    # -- status ------------------------------------------------------

    def status_snapshot(self):
        by_state = collections.Counter(
            job.state for job in self.jobs.values())
        registry = get_registry()
        metrics = {
            name: record["value"]
            for name, record in registry.snapshot().items()
            if record["kind"] in ("counter", "gauge")
            and name.startswith(_METRIC_PREFIXES)}
        return {
            "state": self.state,
            "uptime_s": (time.time() - self._started_at
                         if self._started_at else 0.0),
            "queued": list(self._queue),
            "running": list(self._running),
            "jobs": dict(by_state),
            "max_queue": self.config.max_queue,
            "max_running": self.config.max_running,
            "resumed_pending": self._resumed_pending,
            "skipped_journal_records": self._skipped_records,
            "breakers": self.breakers.snapshot(),
            "last_span": self._last_span,
            "metrics": metrics,
        }


class _OpaqueSpec:
    """Placeholder spec for a journaled job this daemon cannot parse
    (newer schema): keeps ``info()`` working without pretending the
    job is runnable."""

    def __init__(self, raw):
        self._raw = raw

    def as_dict(self):
        return dict(self._raw) if isinstance(self._raw, dict) else {}


def _crash_count(health):
    """Worker crashes and hangs a run's supervisor absorbed (0 when
    the replay ran serial).  Worker *errors* (clean exceptions) are
    excluded: they indict the snapshot or the fault injector, not the
    backend's generated kernel, so they never charge the breaker."""
    if health is None:
        return 0
    return int(getattr(health, "crashes", 0)
               + getattr(health, "timeouts", 0))


def _classify(exc):
    """Map a run's exception onto the typed error vocabulary."""
    from ..core.replay import ReplayError
    from ..scan.snapshot import SnapshotError
    from .protocol import ERR_REPLAY_MISMATCH, ERR_SNAPSHOT, ERR_WORKLOAD
    if isinstance(exc, ServiceError):
        return exc
    if isinstance(exc, ReplayError):
        return ServiceError(ERR_REPLAY_MISMATCH, str(exc))
    if isinstance(exc, SnapshotError):
        return ServiceError(ERR_SNAPSHOT, str(exc))
    if isinstance(exc, RuntimeError) and "failed on" in str(exc):
        return ServiceError(ERR_WORKLOAD, str(exc))
    if isinstance(exc, (ValueError, TypeError, KeyError)):
        # Deterministic programming/spec errors: retrying re-raises.
        return ServiceError(ERR_INTERNAL,
                            f"{type(exc).__name__}: {exc}")
    return ServiceError(ERR_INTERNAL, f"{type(exc).__name__}: {exc}",
                        retryable=True)


def _summarize(run):
    energy = run.energy
    power = energy.power
    return {
        "cycles": run.result.cycles,
        "snapshots": len(run.replays),
        "mean_power_mw": power.mean,
        "total_power_mw": energy.total_power_mw,
        "epi_nj": energy.epi_nj,
        "rel_error": getattr(power, "relative_error_bound", None),
        "gl_backend": run.timings.get("gl_backend"),
        "resumed_sim": run.timings.get("resumed_sim"),
        "resumed_replays": run.timings.get("resumed_replays"),
        "wall_seconds": run.wall_seconds,
        "trace_path": run.trace_path,
        "sampling": getattr(run, "sampling", None),
    }


def _fmt_seconds(deadline_at, job):
    spec = job.spec
    if spec.deadline_s is not None:
        return f"{spec.deadline_s:g}s"
    return "the configured default deadline"
