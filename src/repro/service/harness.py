"""In-process daemon harness for tests and the chaos campaign.

Runs a :class:`~repro.service.daemon.StroberService` on its own event
loop on a background thread, so synchronous test code can talk to it
through the blocking :class:`~repro.service.client.ServiceClient`::

    with ServiceHarness(state_dir=tmp) as harness:
        with harness.client() as client:
            job_id = client.submit(design=..., workload=...)
            job = client.wait(job_id)

The harness always binds TCP on an ephemeral localhost port unless a
``unix_socket`` is configured, and ``stop()`` performs a graceful
drain-and-shutdown (bounded by ``stop_timeout``) so a test that forgot
a job cannot leak the thread forever.
"""

from __future__ import annotations

import asyncio
import threading

from .client import ServiceClient
from .daemon import ServiceConfig, StroberService


class ServiceHarness:
    """Background-thread lifetime manager for one daemon instance."""

    def __init__(self, state_dir, stop_timeout=600.0, **config_kwargs):
        self.config = ServiceConfig(state_dir=state_dir, **config_kwargs)
        self.stop_timeout = stop_timeout
        self.service = None
        self._loop = None
        self._thread = None
        self._started = threading.Event()
        self._startup_error = None

    # -- lifecycle ---------------------------------------------------

    def start(self):
        self._thread = threading.Thread(target=self._run,
                                        name="strober-service",
                                        daemon=True)
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def _run(self):
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self._main())
        finally:
            # Mirror asyncio.run()'s teardown: let in-flight default-
            # executor work (kernel quarantine, abandoned attempts)
            # resolve before the loop closes under it.
            try:
                self._loop.run_until_complete(
                    self._loop.shutdown_asyncgens())
                self._loop.run_until_complete(
                    self._loop.shutdown_default_executor())
            finally:
                self._loop.close()

    async def _main(self):
        try:
            self.service = StroberService(self.config)
            await self.service.start()
        except Exception as exc:
            self._startup_error = exc
            self._started.set()
            return
        self._started.set()
        await self.service.wait_stopped()

    def stop(self):
        """Graceful drain + shutdown; joins the service thread."""
        if self._thread is None or not self._thread.is_alive():
            return
        self._loop.call_soon_threadsafe(self.service.begin_drain, True)
        self._thread.join(self.stop_timeout)
        if self._thread.is_alive():
            raise RuntimeError(
                f"service did not drain within {self.stop_timeout}s")

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc):
        self.stop()

    # -- conveniences ------------------------------------------------

    @property
    def address(self):
        return self.service.address

    def client(self, timeout=600.0):
        return ServiceClient(self.address, timeout=timeout)
