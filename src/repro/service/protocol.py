"""Wire protocol and job specification for the Strober job service.

The daemon speaks line-delimited JSON over a stream socket (Unix or
TCP): each request is one JSON object on one line, each response is one
JSON object on one line.  Responses always carry ``"ok"``; failures
carry a *typed* error envelope::

    {"ok": false, "error": {"type": "queue-full", "message": "..."}}

Error types are a closed vocabulary (:data:`ERROR_TYPES`) so clients
and the chaos campaign can assert on failure *class*, not on message
prose — "every job either completes bit-identically or fails with a
typed error" is only checkable if the types are enumerable.

:class:`JobSpec` is the validated form of a submitted job.  Validation
happens at admission (a malformed spec is rejected before it can
occupy a queue slot), and the canonical :meth:`JobSpec.as_dict` form is
what the service journals — so a resumed daemon re-validates through
the same code path that admitted the job in the first place.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields

# -- typed error vocabulary --------------------------------------------------

ERR_INVALID_REQUEST = "invalid-request"   # malformed JSON / bad spec
ERR_QUEUE_FULL = "queue-full"             # admission control rejection
ERR_DRAINING = "draining"                 # daemon no longer accepting
ERR_UNKNOWN_JOB = "unknown-job"           # job id not known to this daemon
ERR_DEADLINE = "deadline-exceeded"        # per-job wall-clock deadline hit
ERR_CANCELLED = "cancelled"               # cancelled before it ran
ERR_REPLAY_MISMATCH = "replay-mismatch"   # strict replay caught divergence
ERR_SNAPSHOT = "snapshot-integrity"       # sealed snapshot failed checksum
ERR_WORKLOAD = "workload-failed"          # workload exited non-zero
ERR_INTERNAL = "internal"                 # retries exhausted / unexpected

ERROR_TYPES = frozenset({
    ERR_INVALID_REQUEST, ERR_QUEUE_FULL, ERR_DRAINING, ERR_UNKNOWN_JOB,
    ERR_DEADLINE, ERR_CANCELLED, ERR_REPLAY_MISMATCH, ERR_SNAPSHOT,
    ERR_WORKLOAD, ERR_INTERNAL,
})


class ServiceError(Exception):
    """A typed service failure.

    ``retryable`` marks faults worth another attempt (worker crashes,
    transient infrastructure errors); determinism failures (replay
    mismatch, snapshot corruption, workload exit) and policy failures
    (deadline, cancellation) are terminal — retrying a deterministic
    failure just burns the queue.
    """

    def __init__(self, err_type, message, retryable=False):
        assert err_type in ERROR_TYPES, err_type
        super().__init__(message)
        self.type = err_type
        self.message = message
        self.retryable = retryable

    def as_dict(self):
        return {"type": self.type, "message": self.message}


# v2 added the adaptive-sampling knobs (target_rel_error, min_sample,
# max_sample).  A v1 spec is a valid v2 spec (the knobs default off),
# so old clients keep working; a spec claiming a version newer than
# this is rejected at admission.
SPEC_VERSION = 2

_FAULT_KINDS = ("kill", "stall", "error")
_FAULT_KEYS = frozenset({"kind", "index", "times", "seconds",
                         "exit_code"})


@dataclass
class JobSpec:
    """One validated Strober job: design + workload + sampling params.

    ``gl_backend`` is a *request*; the backend that actually runs is
    decided per attempt by the daemon's circuit breaker (see
    :mod:`repro.service.breaker`) and reported in the job status.
    ``faults`` is the chaos-campaign hook: a list of fault dicts
    (``kind``/``index``/``times``/``seconds``/``exit_code``) compiled
    into a :class:`repro.robust.FaultPlan` and consumed across the
    job's attempts, modelling transient faults that do not recur.
    """

    design: str
    workload: str
    sample_size: int = 4
    replay_length: int = 32
    max_cycles: int = 2_000_000
    seed: int = 0
    confidence: float = 0.99
    strict_replay: bool = True
    workers: int = 1
    batch_lanes: int = 1
    gl_backend: str = None
    workload_kwargs: dict = field(default_factory=dict)
    deadline_s: float = None      # per-job wall clock; None = no deadline
    retries: int = None           # None = daemon default
    faults: list = field(default_factory=list)
    # Adaptive sampling (spec v2): stop replaying once the eq.-7
    # interval's relative error reaches the target; None = fixed-sample
    target_rel_error: float = None
    min_sample: int = None
    max_sample: int = None

    @classmethod
    def from_dict(cls, obj):
        """Validate a raw dict into a spec, or raise a typed error."""
        if not isinstance(obj, dict):
            raise ServiceError(ERR_INVALID_REQUEST,
                               f"job spec must be an object, "
                               f"got {type(obj).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(obj) - known - {"v"})
        if unknown:
            raise ServiceError(
                ERR_INVALID_REQUEST,
                f"unknown job spec field(s): {', '.join(unknown)}")
        if obj.get("v", SPEC_VERSION) > SPEC_VERSION:
            raise ServiceError(
                ERR_INVALID_REQUEST,
                f"job spec version {obj['v']} is newer than this "
                f"daemon understands (v{SPEC_VERSION})")

        def need(name, types, pred=None, what=""):
            value = obj.get(name)
            default = cls.__dataclass_fields__[name].default
            if value is None:
                return None
            if isinstance(value, bool) and bool not in types:
                value = None     # bools are ints; reject explicitly
            if not isinstance(value, types) or (pred and not pred(value)):
                raise ServiceError(
                    ERR_INVALID_REQUEST,
                    f"job spec field {name!r} must be {what}")
            return value

        design = need("design", (str,), what="a design name")
        workload = need("workload", (str,), what="a workload name")
        if not design or not workload:
            raise ServiceError(ERR_INVALID_REQUEST,
                               "job spec needs 'design' and 'workload'")
        from ..core.configs import CONFIGS
        from ..isa.programs import ALL_PROGRAMS
        if design not in CONFIGS:
            raise ServiceError(
                ERR_INVALID_REQUEST,
                f"unknown design {design!r} "
                f"(choose from {', '.join(sorted(CONFIGS))})")
        if workload not in ALL_PROGRAMS:
            raise ServiceError(
                ERR_INVALID_REQUEST,
                f"unknown workload {workload!r} "
                f"(choose from {', '.join(sorted(ALL_PROGRAMS))})")

        spec = cls(design=design, workload=workload)
        for name, pred, what in (
                ("sample_size", lambda v: v >= 1, "a positive int"),
                ("replay_length", lambda v: v >= 1, "a positive int"),
                ("max_cycles", lambda v: v >= 1, "a positive int"),
                ("seed", lambda v: v >= 0, "a non-negative int"),
                ("workers", lambda v: 1 <= v <= 64, "an int in 1..64"),
                ("batch_lanes", lambda v: 1 <= v <= 64,
                 "an int in 1..64"),
                ("retries", lambda v: 0 <= v <= 10, "an int in 0..10"),
                ("min_sample", lambda v: v >= 2, "an int >= 2"),
                ("max_sample", lambda v: v >= 2, "an int >= 2")):
            value = need(name, (int,), pred, what)
            if value is not None:
                setattr(spec, name, value)
        for name, pred, what in (
                ("confidence", lambda v: 0.0 < v < 1.0,
                 "a float in (0, 1)"),
                ("deadline_s", lambda v: v > 0.0, "a positive number"),
                ("target_rel_error", lambda v: 0.0 < v < 1.0,
                 "a float in (0, 1)")):
            value = need(name, (int, float), pred, what)
            if value is not None:
                setattr(spec, name, float(value))
        value = need("strict_replay", (bool,), what="a bool")
        if value is not None:
            spec.strict_replay = value
        backend = need("gl_backend", (str,), what="a backend name")
        if backend is not None:
            from ..gatelevel.glcodegen import BACKENDS
            if backend not in BACKENDS:
                raise ServiceError(
                    ERR_INVALID_REQUEST,
                    f"unknown gl_backend {backend!r} "
                    f"(choose from {', '.join(BACKENDS)})")
            spec.gl_backend = backend
        kwargs = need("workload_kwargs", (dict,), what="an object")
        if kwargs is not None:
            spec.workload_kwargs = dict(kwargs)
        faults = need("faults", (list,), what="a list of fault objects")
        if faults:
            spec.faults = [_validate_fault(f) for f in faults]
        return spec

    def as_dict(self):
        """Canonical JSON-able form (what the service journals)."""
        return {
            "v": SPEC_VERSION,
            "design": self.design, "workload": self.workload,
            "sample_size": self.sample_size,
            "replay_length": self.replay_length,
            "max_cycles": self.max_cycles, "seed": self.seed,
            "confidence": self.confidence,
            "strict_replay": self.strict_replay,
            "workers": self.workers, "batch_lanes": self.batch_lanes,
            "gl_backend": self.gl_backend,
            "workload_kwargs": dict(self.workload_kwargs),
            "deadline_s": self.deadline_s, "retries": self.retries,
            "faults": [dict(f) for f in self.faults],
            "target_rel_error": self.target_rel_error,
            "min_sample": self.min_sample,
            "max_sample": self.max_sample,
        }

    def run_kwargs(self):
        """Keyword arguments for ``run_strober`` (backend excluded —
        the circuit breaker decides it per attempt)."""
        return {
            "sample_size": self.sample_size,
            "replay_length": self.replay_length,
            "max_cycles": self.max_cycles,
            "seed": self.seed,
            "confidence": self.confidence,
            "strict_replay": self.strict_replay,
            "workers": self.workers,
            "batch_lanes": self.batch_lanes,
            "workload_kwargs": dict(self.workload_kwargs) or None,
            "target_rel_error": self.target_rel_error,
            "min_sample": self.min_sample,
            "max_sample": self.max_sample,
        }

    def fault_plan(self):
        """Compile ``faults`` into a FaultPlan (None when there are
        none).  Called once per *job* — the plan's budget is shared
        across attempts, so a sabotaged dispatch retries clean."""
        if not self.faults:
            return None
        from ..robust.faultinject import FaultPlan, FaultSpec
        return FaultPlan([FaultSpec(**f) for f in self.faults])


def _validate_fault(obj):
    if not isinstance(obj, dict):
        raise ServiceError(ERR_INVALID_REQUEST,
                           "each fault must be an object")
    unknown = sorted(set(obj) - _FAULT_KEYS)
    if unknown:
        raise ServiceError(ERR_INVALID_REQUEST,
                           f"unknown fault field(s): {', '.join(unknown)}")
    if obj.get("kind") not in _FAULT_KINDS:
        raise ServiceError(
            ERR_INVALID_REQUEST,
            f"fault kind must be one of {', '.join(_FAULT_KINDS)}")
    return dict(obj)


# -- line framing ------------------------------------------------------------

MAX_LINE_BYTES = 1 << 20   # a request larger than 1 MiB is not a request


def encode_line(obj):
    """One JSON object as one newline-terminated UTF-8 line."""
    return (json.dumps(obj, separators=(",", ":"), sort_keys=True)
            + "\n").encode()


def decode_line(line):
    """Parse one request line into a dict, or raise a typed error."""
    if len(line) > MAX_LINE_BYTES:
        raise ServiceError(ERR_INVALID_REQUEST, "request line too long")
    try:
        obj = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ServiceError(ERR_INVALID_REQUEST,
                           f"request is not valid JSON: {exc}")
    if not isinstance(obj, dict):
        raise ServiceError(ERR_INVALID_REQUEST,
                           "request must be a JSON object")
    return obj


def ok_response(**extra):
    out = {"ok": True}
    out.update(extra)
    return out


def error_response(err):
    """The wire form of a :class:`ServiceError` (or a type/message
    pair)."""
    if isinstance(err, ServiceError):
        return {"ok": False, "error": err.as_dict()}
    err_type, message = err
    assert err_type in ERROR_TYPES, err_type
    return {"ok": False, "error": {"type": err_type, "message": message}}
