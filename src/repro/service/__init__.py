"""Strober-as-a-service: a resilient job daemon over ``run_strober``.

The paper's methodology makes each energy evaluation cheap enough to
run constantly; this package gives a machine a standing front door for
that — one supervised asyncio daemon that accepts Strober jobs (design,
workload, sampling parameters) over a line-delimited JSON socket API
and runs them through the exact same flow the library API exposes, so
a number produced by the service is bit-identical to one produced by
calling :func:`repro.core.flow.run_strober` yourself.

Layers (each its own module):

* :mod:`~repro.service.protocol` — the wire format, validated
  :class:`JobSpec`, and the closed typed-error vocabulary.
* :mod:`~repro.service.daemon` — admission control, per-job deadlines
  and full-jitter retries, graceful drain, ``/status``.
* :mod:`~repro.service.breaker` — per-design backend circuit breakers
  (the ``c -> compiled -> interp`` demotion ladder) with compiled-
  kernel quarantine.
* :mod:`~repro.service.state` — the crash-safe jobs journal (same
  CRC-framed record format as the run journal) and resume loader.
* :mod:`~repro.service.client` / :mod:`~repro.service.harness` — the
  blocking client and the in-process test harness.

``python -m repro.service --state-dir DIR`` starts a daemon.
"""

from .protocol import (
    JobSpec, ServiceError, SPEC_VERSION, ERROR_TYPES,
    ERR_INVALID_REQUEST, ERR_QUEUE_FULL, ERR_DRAINING, ERR_UNKNOWN_JOB,
    ERR_DEADLINE, ERR_CANCELLED, ERR_REPLAY_MISMATCH, ERR_SNAPSHOT,
    ERR_WORKLOAD, ERR_INTERNAL,
)
from .breaker import (
    LADDER, BackendBreaker, BreakerBoard, compiled_kernel_key,
    quarantine_compiled_kernel,
)
from .state import (
    ServiceJournal, ServiceState, load_service_state, result_digest,
)
from .daemon import ServiceConfig, StroberService
from .client import ServiceClient
from .harness import ServiceHarness

__all__ = [
    "JobSpec", "ServiceError", "SPEC_VERSION", "ERROR_TYPES",
    "ERR_INVALID_REQUEST", "ERR_QUEUE_FULL", "ERR_DRAINING",
    "ERR_UNKNOWN_JOB", "ERR_DEADLINE", "ERR_CANCELLED",
    "ERR_REPLAY_MISMATCH", "ERR_SNAPSHOT", "ERR_WORKLOAD",
    "ERR_INTERNAL",
    "LADDER", "BackendBreaker", "BreakerBoard", "compiled_kernel_key",
    "quarantine_compiled_kernel",
    "ServiceJournal", "ServiceState", "load_service_state",
    "result_digest",
    "ServiceConfig", "StroberService", "ServiceClient",
    "ServiceHarness",
]
