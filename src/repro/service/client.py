"""Blocking socket client for the Strober job daemon.

One connection, line-delimited JSON both ways (see
:mod:`repro.service.protocol`).  Every request method returns the
decoded response dict; responses with ``ok: false`` raise the typed
:class:`~repro.service.protocol.ServiceError` they carry, so client
code (and the chaos campaign) asserts on error *types*::

    with ServiceClient(address) as client:
        job_id = client.submit(design="rocket_mini", workload="towers")
        job = client.wait(job_id, timeout_s=300)
        assert job["state"] == "done", job["error"]
"""

from __future__ import annotations

import socket

from .protocol import (
    ServiceError, encode_line, decode_line, ERR_INTERNAL,
)


class ServiceClient:
    """One blocking connection to a daemon.

    ``address`` is what :attr:`StroberService.address` returns (a dict
    with ``family`` unix/tcp) or simply a Unix socket path string.
    """

    def __init__(self, address, timeout=600.0):
        if isinstance(address, str):
            address = {"family": "unix", "path": address}
        self.address = address
        self.timeout = timeout
        self._sock = None
        self._file = None

    # -- connection --------------------------------------------------

    def connect(self):
        if self._sock is not None:
            return self
        if self.address["family"] == "unix":
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(self.address["path"])
        else:
            sock = socket.create_connection(
                (self.address["host"], self.address["port"]),
                timeout=self.timeout)
        self._sock = sock
        self._file = sock.makefile("rwb")
        return self

    def close(self):
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self):
        return self.connect()

    def __exit__(self, *exc):
        self.close()

    def disconnect_abruptly(self):
        """Drop the connection without shutdown pleasantries — the
        fault campaign's 'client vanished mid-job' move."""
        if self._sock is not None:
            self._sock.close()
        self._sock = None
        self._file = None

    # -- raw request/response ----------------------------------------

    def request(self, cmd, **fields):
        """Send one command, return the decoded ``ok`` response.

        Raises the response's typed :class:`ServiceError` on ``ok:
        false`` and a plain ``internal`` ServiceError when the
        transport itself fails.
        """
        self.connect()
        message = {"cmd": cmd}
        message.update(fields)
        try:
            self._file.write(encode_line(message))
            self._file.flush()
            line = self._file.readline()
        except (OSError, ValueError) as exc:
            self.close()
            raise ServiceError(ERR_INTERNAL,
                               f"transport failure: {exc}")
        if not line:
            self.close()
            raise ServiceError(ERR_INTERNAL,
                               "daemon closed the connection")
        response = decode_line(line)
        if not response.get("ok"):
            error = response.get("error") or {}
            raise ServiceError(error.get("type", ERR_INTERNAL),
                               error.get("message", "unknown error"))
        return response

    # -- commands ----------------------------------------------------

    def ping(self):
        return self.request("ping")["state"]

    def submit(self, **spec):
        """Submit a job spec; returns the job id."""
        return self.request("submit", spec=spec)["job_id"]

    def job(self, job_id):
        return self.request("job", id=job_id)["job"]

    def wait(self, job_id, timeout_s=None):
        """Block until the job is terminal (or ``timeout_s`` passes);
        returns the job info dict either way — check ``state``."""
        return self.request("wait", id=job_id, timeout_s=timeout_s)["job"]

    def cancel(self, job_id):
        return self.request("cancel", id=job_id)

    def status(self):
        return self.request("status")["status"]

    def metrics(self):
        """The daemon's Prometheus text exposition page (a string)."""
        return self.request("metrics")["text"]

    def drain(self):
        return self.request("drain")["state"]

    def shutdown(self):
        return self.request("shutdown")["state"]
