"""Per-design backend circuit breakers for the job service.

The gate-level replay backends are bit-identical by construction
(``interp`` / ``compiled`` / ``c``), which makes backend choice a pure
reliability/performance trade — exactly the shape a circuit breaker
wants.  When workers running a design under one backend keep crashing,
the breaker demotes that design one rung down the ladder::

    c  ->  compiled  ->  interp

and every later attempt for the same design is capped at the demoted
rung.  Demoting *from* ``c`` additionally quarantines the design's
cached compiled kernel (the ``glso`` shared object): a poisoned or
ABI-drifted ``.so`` that segfaults every worker that loads it must be
pulled out of circulation, not reloaded by the next attempt — and the
quarantined file is kept (``<cache>/quarantine/``) for post-mortem
inspection rather than deleted with the evidence.

``interp`` is the floor: it is pure Python over the levelized netlist,
shares no generated artifact, and is the backend the supervisor's
in-process serial fallback already trusts.  A breaker never demotes
below it; repeated crashes *on* interp are genuine worker faults and
stay the supervisor's problem (retry, respawn, serial fallback).
"""

from __future__ import annotations

import threading
import time

# Most-aggressive first; index = rung, higher rung = more conservative.
LADDER = ("c", "compiled", "interp")

DEFAULT_THRESHOLD = 2       # crashes on one rung before demotion
DEFAULT_COOLDOWN_S = None   # None = demotions are sticky for the
                            # daemon's lifetime (no half-open probing)


def _rung(backend):
    """Ladder position of a backend request; ``auto`` and None count
    as the most aggressive rung (they resolve to the best available)."""
    if backend in (None, "auto"):
        return 0
    return LADDER.index(backend)


class BackendBreaker:
    """Crash accounting and demotion state for one design."""

    def __init__(self, design, threshold=DEFAULT_THRESHOLD,
                 cooldown_s=DEFAULT_COOLDOWN_S):
        self.design = design
        self.threshold = max(1, int(threshold))
        self.cooldown_s = cooldown_s
        self.failures = [0] * len(LADDER)   # per-rung crash counts
        self.floor = 0                      # minimum rung allowed
        self.demotions = []                 # event dicts, oldest first
        self._demoted_at = None

    def effective(self, requested):
        """The backend an attempt may actually use.

        The request is capped at the current floor; an ``auto``/None
        request passes through untouched while the floor is 0 so the
        backend resolver still picks the best available.  With a
        cooldown configured, a floor older than ``cooldown_s`` is
        lifted one rung first (half-open probe) — a fresh crash will
        re-demote it immediately.
        """
        self._maybe_probe()
        if self.floor == 0:
            return requested
        return LADDER[max(_rung(requested), self.floor)]

    def _maybe_probe(self):
        if (self.cooldown_s is None or self.floor == 0
                or self._demoted_at is None):
            return
        if time.monotonic() - self._demoted_at < self.cooldown_s:
            return
        self.floor -= 1
        self._demoted_at = time.monotonic() if self.floor else None
        self.demotions.append({
            "design": self.design, "kind": "probe",
            "to": LADDER[self.floor] if self.floor else None,
            "at": time.time(),
        })

    def record_failure(self, backend, count=1, reason="worker-crash"):
        """Charge ``count`` crashes to the rung that was running.

        Returns the demotion event dict when this tips the rung over
        its threshold, else None.  The rung's count resets on demotion
        so the next rung down needs fresh evidence of its own.
        """
        rung = max(_rung(backend), self.floor)
        self.failures[rung] += count
        if rung >= len(LADDER) - 1:       # interp: nowhere to go
            return None
        if self.failures[rung] < self.threshold:
            return None
        self.failures[rung] = 0
        self.floor = rung + 1
        self._demoted_at = time.monotonic()
        event = {
            "design": self.design, "kind": "demotion",
            "from": LADDER[rung], "to": LADDER[self.floor],
            "reason": reason, "failures": count, "at": time.time(),
        }
        self.demotions.append(event)
        return event

    def as_dict(self):
        return {
            "design": self.design,
            "floor": LADDER[self.floor] if self.floor else None,
            "threshold": self.threshold,
            "failures": {LADDER[i]: n
                         for i, n in enumerate(self.failures) if n},
            "demotions": list(self.demotions),
        }


class BreakerBoard:
    """All designs' breakers, created on first touch, thread-safe."""

    def __init__(self, threshold=DEFAULT_THRESHOLD,
                 cooldown_s=DEFAULT_COOLDOWN_S):
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._lock = threading.Lock()
        self._breakers = {}

    def _get(self, design):
        with self._lock:
            breaker = self._breakers.get(design)
            if breaker is None:
                breaker = self._breakers[design] = BackendBreaker(
                    design, threshold=self.threshold,
                    cooldown_s=self.cooldown_s)
            return breaker

    def effective(self, design, requested):
        with self._lock:
            breaker = self._breakers.get(design)
        if breaker is None:
            return requested
        return breaker.effective(requested)

    def record_failure(self, design, backend, count=1,
                       reason="worker-crash"):
        return self._get(design).record_failure(backend, count=count,
                                                reason=reason)

    def snapshot(self):
        with self._lock:
            return {design: b.as_dict()
                    for design, b in self._breakers.items()}


def compiled_kernel_key(design):
    """Artifact-cache key of a design's compiled replay kernel (glso).

    Reconstructed from the design the same way the codegen layer
    derives it, so the breaker can quarantine the exact entry workers
    were loading.  Requires the ASIC flow, which a design that has
    already run a job has cached (in memory and on disk).
    """
    from ..core.flow import get_circuits, _soc_asic_flow
    from ..core.replay import load_levelized_schedule
    from ..gatelevel.glcodegen import kernel_cache_key
    _, target = get_circuits(design)
    flow = _soc_asic_flow(target)
    schedule = load_levelized_schedule(flow)
    return kernel_cache_key(flow.netlist, "c", schedule)


def quarantine_compiled_kernel(design):
    """Move a design's cached glso entry to the cache's quarantine
    directory; returns the quarantined path, or None when there was
    nothing to quarantine (or the design's flow could not be loaded —
    quarantine is best-effort, demotion already protects the jobs)."""
    from ..parallel.cache import get_cache
    try:
        key = compiled_kernel_key(design)
    except Exception:
        return None
    return get_cache().quarantine("glso", key)
