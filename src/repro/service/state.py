"""Crash-safe job-queue state for the Strober job service.

The daemon journals its queue in the same CRC-framed, fsync'd record
format the run journal uses (:mod:`repro.robust.journal`), in its own
file (``<state_dir>/jobs.journal``):

* ``TYPE_JOB`` — a job passed admission: ``{"v", "id", "spec",
  "submitted_at"}`` with the spec in its canonical
  :meth:`~repro.service.protocol.JobSpec.as_dict` form.
* ``TYPE_JOB_UPDATE`` — a job reached a terminal state: ``{"v", "id",
  "state", "error", "digest", "summary", "finished_at"}``.

Both records are appended *before* the daemon acknowledges the
transition to anyone, so a daemon killed at any instant can replay the
journal and recover exactly the set of accepted-but-unfinished jobs —
submission order preserved — without re-running anything that already
finished.  Per-run replay progress is *not* duplicated here: each job
owns a standard run journal (``<state_dir>/runs/<id>.journal``), and
resuming a job goes through ``run_strober``'s own resume path, which
skips the FAME simulation and every replay with a RESULT record.

Forward compatibility: payloads carry a ``"v"`` schema version and the
loader *skips* (and counts) record types or versions it does not
understand, so a journal written by a newer daemon still resumes under
an older one — the same contract the run-journal reader honors.
"""

from __future__ import annotations

import hashlib
import os
import re
import time
from dataclasses import dataclass, field

from ..robust.journal import (
    RunJournal, read_journal, TYPE_JOB, TYPE_JOB_UPDATE,
)

JOB_SCHEMA_VERSION = 1


def result_digest(replays):
    """Order-sensitive digest over everything a replay result decides.

    Two runs of the same spec must produce the same digest — this is
    the bit-identity the chaos campaign asserts between a faulted
    service job and a clean serial run.  Hashes the replay cycle
    counts, mismatch counts, and per-group power numbers (the full
    ``repr`` of each, so a single flipped mantissa bit changes the
    digest).
    """
    h = hashlib.blake2b(digest_size=16)
    for result in replays:
        key = (result.snapshot_cycle, result.cycles, result.mismatches,
               result.power.total_w,
               tuple(sorted(result.power.by_group.items())))
        h.update(repr(key).encode())
        h.update(b"\x1f")
    return h.hexdigest()

_ID_RE = re.compile(r"^job-(\d+)$")


class ServiceJournal:
    """Append-side view: one durable record per queue transition."""

    def __init__(self, path):
        self.path = path
        self._journal = RunJournal(path)

    def open(self):
        self._journal.open()
        return self

    def close(self):
        self._journal.close()

    def __enter__(self):
        return self.open()

    def __exit__(self, *exc):
        self.close()

    def job_accepted(self, job_id, spec_dict):
        self._journal.append(TYPE_JOB, {
            "v": JOB_SCHEMA_VERSION, "id": job_id, "spec": spec_dict,
            "submitted_at": time.time(),
        })

    def job_finished(self, job_id, state, error=None, digest=None,
                     summary=None):
        """Record a terminal transition (``done`` / ``failed`` /
        ``cancelled``)."""
        self._journal.append(TYPE_JOB_UPDATE, {
            "v": JOB_SCHEMA_VERSION, "id": job_id, "state": state,
            "error": error, "digest": digest, "summary": summary,
            "finished_at": time.time(),
        })


@dataclass
class ServiceState:
    """What a restarted daemon recovers from its jobs journal."""

    pending: list = field(default_factory=list)    # [(id, record)], FIFO
    finished: dict = field(default_factory=dict)   # id -> update record
    accepted: dict = field(default_factory=dict)   # id -> job record
    skipped_records: int = 0                       # unknown type/version
    next_job_number: int = 1

    @property
    def empty(self):
        return not self.accepted


def _versioned(obj):
    return (isinstance(obj, dict) and isinstance(obj.get("id"), str)
            and obj.get("v", 0) <= JOB_SCHEMA_VERSION)


def load_service_state(path):
    """Replay a jobs journal into a :class:`ServiceState`.

    Tolerates everything short of losing data: a missing or empty
    journal is a fresh start, a torn tail is repaired by the shared
    reader, and unknown record types or newer payload versions are
    skipped and counted — never fatal.
    """
    state = ServiceState()
    if not os.path.exists(path) or os.path.getsize(path) == 0:
        return state
    for rtype, obj in read_journal(path):
        if rtype == TYPE_JOB and _versioned(obj):
            state.accepted[obj["id"]] = obj
            match = _ID_RE.match(obj["id"])
            if match:
                state.next_job_number = max(state.next_job_number,
                                            int(match.group(1)) + 1)
        elif rtype == TYPE_JOB_UPDATE and _versioned(obj):
            if obj["id"] in state.accepted:
                state.finished[obj["id"]] = obj
            else:
                state.skipped_records += 1   # update without its job
        else:
            state.skipped_records += 1
    state.pending = [(job_id, record)
                     for job_id, record in state.accepted.items()
                     if job_id not in state.finished]
    return state
