"""Supervised replay pool: fault-tolerant snapshot fan-out.

The bare ``pool.map`` fan-out had three failure modes that either hung
``replay_all`` forever or killed the whole run on the first transient
fault: a worker that crashes (OOM-killed, segfault in a native
extension), a worker that hangs (deadlocked fork, runaway replay), and
a worker that raises a spurious one-off exception.  This supervisor
replaces it with an explicitly managed set of worker processes:

* each snapshot gets a wall-clock deadline derived from its replay
  length (overridable per call or via ``$REPRO_REPLAY_TIMEOUT``);
* a dead or overdue worker is killed and respawned, and its snapshot is
  retried — up to ``max_retries`` times, with exponential backoff — on
  a fresh worker;
* a snapshot that exhausts its retries degrades gracefully to an
  in-process serial replay, so one poisoned worker environment cannot
  sink the run;
* deterministic verification failures (strict-mode ``ReplayError``
  mismatches, ``SnapshotError`` integrity failures) are *never*
  retried: they are the detection machinery firing, and they propagate
  to the caller exactly as the serial path would raise them;
* every recovery action is recorded as a :class:`ReplayIncident` in a
  structured :class:`ReplayHealthReport` so a run that needed healing
  is distinguishable from a clean one.
"""

from __future__ import annotations

import os
import pickle
import queue as queuelib
import time
from collections import deque
from dataclasses import dataclass, field

from ..parallel.pool import ParallelReplayError, _pick_context

_ENV_TIMEOUT = "REPRO_REPLAY_TIMEOUT"
_MIN_TIMEOUT_S = 30.0
_PER_CYCLE_BUDGET_S = 0.25
_POLL_S = 0.02


def default_replay_timeout(replay_length):
    """Per-snapshot deadline: generous per-cycle budget with a floor.

    ``$REPRO_REPLAY_TIMEOUT`` (seconds) overrides the derivation.
    """
    env = os.environ.get(_ENV_TIMEOUT)
    if env:
        return float(env)
    return max(_MIN_TIMEOUT_S, _PER_CYCLE_BUDGET_S * float(replay_length))


@dataclass
class ReplayIncident:
    """One recovery (or detection) action the supervisor took."""

    kind: str            # timeout | worker-crash | worker-error |
                         # serial-fallback
    snapshot_index: int
    snapshot_cycle: int
    attempt: int         # 1-based attempt number that failed
    detail: str = ""


@dataclass
class ReplayHealthReport:
    """Structured account of how a supervised replay run went."""

    workers: int = 0
    timeout_seconds: float = 0.0
    total_snapshots: int = 0
    completed_parallel: int = 0
    completed_serial: int = 0
    retries: int = 0
    timeouts: int = 0
    crashes: int = 0
    worker_errors: int = 0
    respawns: int = 0
    serial_fallbacks: int = 0
    incidents: list = field(default_factory=list)

    @property
    def healthy(self):
        return not self.incidents

    def record(self, kind, index, cycle, attempt, detail=""):
        self.incidents.append(
            ReplayIncident(kind=kind, snapshot_index=index,
                           snapshot_cycle=cycle, attempt=attempt,
                           detail=detail))

    def summary(self):
        if self.healthy:
            return (f"replay pool healthy: {self.completed_parallel} "
                    f"snapshot(s) on {self.workers} worker(s), no incidents")
        return (f"replay pool recovered: {self.crashes} crash(es), "
                f"{self.timeouts} timeout(s), {self.worker_errors} worker "
                f"error(s); {self.retries} retry(ies), "
                f"{self.serial_fallbacks} serial fallback(s) over "
                f"{self.total_snapshots} snapshot(s)")


def _shippable(exc):
    """Exceptions cross the result queue by pickle; guard against ones
    that can't (a broken queue feeder thread would look like a hang)."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return RuntimeError(
            f"worker raised unpicklable {type(exc).__name__}: {exc!r}")


def _worker_main(payload, task_q, result_q):
    """Worker process: build the engine once, replay streamed tasks."""
    try:
        from ..core.replay import ReplayEngine
        flow, port_names, grouping, freq_hz = pickle.loads(payload)
        engine = ReplayEngine.from_flow(
            flow, port_names=port_names, grouping=grouping, freq_hz=freq_hz)
    except BaseException as exc:
        result_q.put((None, "init-error", f"{type(exc).__name__}: {exc}"))
        return
    while True:
        task = task_q.get()
        if task is None:
            return
        idx, snapshot, strict, fault = task
        try:
            if fault is not None:
                from .faultinject import apply_worker_fault
                apply_worker_fault(fault)
            result_q.put((idx, "ok", engine.replay(snapshot, strict=strict)))
        except Exception as exc:
            result_q.put((idx, "error", _shippable(exc)))


class _Worker:
    """Parent-side handle: one process, one task in flight at a time."""

    def __init__(self, ctx, payload, result_q):
        self.task_q = ctx.Queue()
        self.proc = ctx.Process(target=_worker_main,
                                args=(payload, self.task_q, result_q),
                                daemon=True)
        self.proc.start()
        self.task = None          # snapshot index in flight, or None
        self.deadline = None
        self.attempt = 0

    def dispatch(self, idx, snapshot, strict, fault, timeout, attempt):
        self.task = idx
        self.attempt = attempt
        self.deadline = time.monotonic() + timeout
        self.task_q.put((idx, snapshot, strict, fault))

    def clear(self):
        self.task = None
        self.deadline = None

    def shutdown(self):
        """Polite stop for an idle, healthy worker."""
        try:
            self.task_q.put(None)
        except Exception:
            pass
        self.proc.join(timeout=2.0)
        if self.proc.is_alive():
            self.kill()
        else:
            self._close_queue()

    def kill(self):
        self.proc.terminate()
        self.proc.join(timeout=2.0)
        if self.proc.is_alive():
            self.proc.kill()
            self.proc.join(timeout=2.0)
        self._close_queue()

    def _close_queue(self):
        try:
            self.task_q.cancel_join_thread()
            self.task_q.close()
        except Exception:
            pass


def replay_supervised(flow, snapshots, *, workers, port_names,
                      grouping=None, freq_hz=None, strict=True,
                      start_method=None, timeout=None, max_retries=2,
                      backoff_base=0.25, fault_plan=None, on_result=None,
                      serial_engine=None):
    """Replay ``snapshots`` under supervision; order-preserving.

    Returns ``(results, ReplayHealthReport)``.  ``on_result(index,
    result)`` fires as each replay completes (in completion order, with
    the snapshot's position in ``snapshots``) — the hook the crash-safe
    run journal uses to persist progress incrementally.

    ``fault_plan`` (a :class:`repro.robust.FaultPlan`) deliberately
    sabotages chosen dispatches; it exists for the fault-injection
    harness and is consumed supervisor-side so a retried snapshot is
    not re-faulted once the plan is exhausted.

    ``serial_engine`` is the engine used for last-resort in-process
    replays; built lazily from ``flow`` when not supplied.
    """
    snapshots = list(snapshots)
    n = len(snapshots)
    report = ReplayHealthReport(total_snapshots=n)
    if n == 0:
        return [], report
    try:
        payload = pickle.dumps((flow, list(port_names), grouping, freq_hz),
                               protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise ParallelReplayError(
            f"replay payload is not picklable: {exc}") from exc
    workers = max(1, min(int(workers), n))
    if timeout is None:
        timeout = default_replay_timeout(
            max(s.replay_length for s in snapshots))
    report.workers = workers
    report.timeout_seconds = timeout

    from ..core.replay import ReplayError
    from ..scan.snapshot import SnapshotError

    ctx = _pick_context(start_method)
    result_q = ctx.Queue()
    pool = [_Worker(ctx, payload, result_q) for _ in range(workers)]
    results = [None] * n
    completed = [False] * n
    attempts = [0] * n
    ready = deque(range(n))
    waiting = []                   # (eligible_monotonic_time, index)
    done = 0

    def _get_serial_engine():
        nonlocal serial_engine
        if serial_engine is None:
            from ..core.replay import ReplayEngine
            serial_engine = ReplayEngine.from_flow(
                flow, port_names=port_names, grouping=grouping,
                freq_hz=freq_hz)
        return serial_engine

    def _complete(idx, result, serial=False):
        nonlocal done
        if completed[idx]:
            return
        completed[idx] = True
        results[idx] = result
        done += 1
        if serial:
            report.completed_serial += 1
        else:
            report.completed_parallel += 1
        if on_result is not None:
            on_result(idx, result)

    def _retry_or_fallback(idx, kind, detail):
        """Record the incident, then either reschedule or go serial."""
        if completed[idx]:
            return
        attempts[idx] += 1
        report.record(kind, idx, snapshots[idx].cycle, attempts[idx], detail)
        if attempts[idx] > max_retries:
            report.serial_fallbacks += 1
            report.record("serial-fallback", idx, snapshots[idx].cycle,
                          attempts[idx],
                          "retries exhausted; replaying in-process")
            _complete(idx,
                      _get_serial_engine().replay(snapshots[idx],
                                                  strict=strict),
                      serial=True)
        else:
            report.retries += 1
            delay = backoff_base * (2 ** (attempts[idx] - 1))
            waiting.append((time.monotonic() + delay, idx))

    def _worker_for(idx):
        for w in pool:
            if w.task == idx:
                return w
        return None

    try:
        while done < n:
            now = time.monotonic()
            if waiting:
                still = []
                for eligible, idx in waiting:
                    if eligible <= now:
                        ready.append(idx)
                    else:
                        still.append((eligible, idx))
                waiting[:] = still

            for w in pool:
                if w.task is None and ready and w.proc.is_alive():
                    idx = ready.popleft()
                    fault = (fault_plan.pick(idx, snapshots[idx])
                             if fault_plan is not None else None)
                    w.dispatch(idx, snapshots[idx], strict, fault, timeout,
                               attempts[idx] + 1)

            # Drain every available result before health checks, so a
            # worker that answered and then died is credited, not
            # retried.
            got_any = False
            while True:
                try:
                    msg = result_q.get(timeout=0.0 if got_any else _POLL_S)
                except queuelib.Empty:
                    break
                got_any = True
                idx, status, body = msg
                if status == "init-error":
                    raise ParallelReplayError(
                        f"replay worker failed to initialize: {body}")
                w = _worker_for(idx)
                if w is not None:
                    w.clear()
                if completed[idx]:
                    continue
                if status == "ok":
                    _complete(idx, body)
                else:
                    if isinstance(body, (ReplayError, SnapshotError)):
                        # Verification failure: deterministic, and the
                        # whole point — detection, not a fault to heal.
                        raise body
                    report.worker_errors += 1
                    _retry_or_fallback(
                        idx, "worker-error",
                        f"{type(body).__name__}: {body}")

            now = time.monotonic()
            for i, w in enumerate(pool):
                if w.task is None:
                    if not w.proc.is_alive() and (ready or waiting):
                        # Idle corpse with work outstanding: replace it.
                        w._close_queue()
                        pool[i] = _Worker(ctx, payload, result_q)
                        report.respawns += 1
                    continue
                idx = w.task
                if not w.proc.is_alive():
                    report.crashes += 1
                    exitcode = w.proc.exitcode
                    w.clear()
                    w._close_queue()
                    pool[i] = _Worker(ctx, payload, result_q)
                    report.respawns += 1
                    _retry_or_fallback(
                        idx, "worker-crash",
                        f"worker died mid-replay (exitcode {exitcode})")
                elif now > w.deadline:
                    report.timeouts += 1
                    w.clear()
                    w.kill()
                    pool[i] = _Worker(ctx, payload, result_q)
                    report.respawns += 1
                    _retry_or_fallback(
                        idx, "timeout",
                        f"no result within {timeout:.1f}s; worker killed")
    finally:
        for w in pool:
            if w.proc.is_alive() and w.task is None:
                w.shutdown()
            else:
                w.kill()
        try:
            result_q.cancel_join_thread()
            result_q.close()
        except Exception:
            pass

    return results, report
