"""Supervised replay pool: fault-tolerant snapshot fan-out.

The bare ``pool.map`` fan-out had three failure modes that either hung
``replay_all`` forever or killed the whole run on the first transient
fault: a worker that crashes (OOM-killed, segfault in a native
extension), a worker that hangs (deadlocked fork, runaway replay), and
a worker that raises a spurious one-off exception.  This supervisor
replaces it with an explicitly managed set of worker processes:

* each snapshot gets a wall-clock deadline derived from its replay
  length (overridable per call or via ``$REPRO_REPLAY_TIMEOUT``); the
  deadline clock only starts once the worker has finished its one-time
  engine initialization (kernel compile/load), which the worker
  announces with a ``ready`` message — so a ~2 s gcc compile under
  ``gl_backend="c"`` cannot eat a small first batch's budget and
  trigger a spurious hang-kill;
* a dead or overdue worker is killed and respawned, and its snapshot is
  retried — up to ``max_retries`` times, with exponential backoff and
  *full jitter* (the retry delay is drawn uniformly from [0, cap]), so
  a batch of simultaneously-killed workers does not respawn and
  re-dispatch in lockstep;
* a snapshot that exhausts its retries degrades gracefully to an
  in-process serial replay, so one poisoned worker environment cannot
  sink the run;
* deterministic verification failures (strict-mode ``ReplayError``
  mismatches, ``SnapshotError`` integrity failures) are *never*
  retried: they are the detection machinery firing, and they propagate
  to the caller exactly as the serial path would raise them;
* every recovery action is recorded as a :class:`ReplayIncident` in a
  structured :class:`ReplayHealthReport` so a run that needed healing
  is distinguishable from a clean one.
"""

from __future__ import annotations

import os
import pickle
import random
import struct
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection as _mpconn

from ..parallel.pool import ParallelReplayError, _pick_context

_ENV_TIMEOUT = "REPRO_REPLAY_TIMEOUT"
_ENV_INIT_GRACE = "REPRO_REPLAY_INIT_GRACE"
_MIN_TIMEOUT_S = 30.0
_PER_CYCLE_BUDGET_S = 0.25
_POLL_S = 0.02
_INIT_GRACE_S = 300.0

# Full-jitter retry delays (and nothing else) come from this generator;
# it is module-level so tests can seed it deterministically.
_BACKOFF_RNG = random.Random()


def default_replay_timeout(replay_length):
    """Per-snapshot deadline: generous per-cycle budget with a floor.

    ``$REPRO_REPLAY_TIMEOUT`` (seconds) overrides the derivation.
    """
    env = os.environ.get(_ENV_TIMEOUT)
    if env:
        return float(env)
    return max(_MIN_TIMEOUT_S, _PER_CYCLE_BUDGET_S * float(replay_length))


def default_init_grace():
    """Extra deadline headroom while a worker is still initializing.

    Engine construction inside a worker pays one-time costs the batch
    deadline must not be charged for — most visibly the C kernel
    compile under ``gl_backend="c"`` on a cold cache.  Until the worker
    reports ``ready``, its in-flight task's deadline is extended by
    this grace; the moment ``ready`` arrives the deadline is re-armed
    to the plain task timeout.  ``$REPRO_REPLAY_INIT_GRACE`` (seconds)
    overrides.
    """
    env = os.environ.get(_ENV_INIT_GRACE)
    if env:
        return float(env)
    return _INIT_GRACE_S


@dataclass
class ReplayIncident:
    """One recovery (or detection) action the supervisor took."""

    kind: str            # timeout | worker-crash | worker-error |
                         # serial-fallback
    snapshot_index: int
    snapshot_cycle: int
    attempt: int         # 1-based attempt number that failed
    detail: str = ""


@dataclass
class ReplayHealthReport:
    """Structured account of how a supervised replay run went."""

    workers: int = 0
    timeout_seconds: float = 0.0
    batch_lanes: int = 1
    total_snapshots: int = 0
    completed_parallel: int = 0
    completed_serial: int = 0
    retries: int = 0
    timeouts: int = 0
    crashes: int = 0
    worker_errors: int = 0
    respawns: int = 0
    serial_fallbacks: int = 0
    cancelled: int = 0           # snapshots abandoned by a CancelToken
    incidents: list = field(default_factory=list)

    @property
    def healthy(self):
        # A cooperative cancellation is a *decision*, not a fault: a
        # stream the controller stopped early still counts as healthy.
        return not self.incidents

    def record(self, kind, index, cycle, attempt, detail=""):
        # Every recovery action is also a trace event + a metric, so a
        # run that needed healing is visible in the exported timeline
        # and the report CLI, not only on this report object.
        from ..obs import get_tracer, get_registry
        get_registry().counter(f"supervisor.{kind}").inc()
        get_tracer().instant(f"supervisor.{kind}", cat="supervisor",
                             snapshot_index=index, snapshot_cycle=cycle,
                             attempt=attempt, detail=detail)
        self.incidents.append(
            ReplayIncident(kind=kind, snapshot_index=index,
                           snapshot_cycle=cycle, attempt=attempt,
                           detail=detail))

    def summary(self):
        if self.healthy:
            return (f"replay pool healthy: {self.completed_parallel} "
                    f"snapshot(s) on {self.workers} worker(s), no incidents")
        return (f"replay pool recovered: {self.crashes} crash(es), "
                f"{self.timeouts} timeout(s), {self.worker_errors} worker "
                f"error(s); {self.retries} retry(ies), "
                f"{self.serial_fallbacks} serial fallback(s) over "
                f"{self.total_snapshots} snapshot(s)")


def _shippable(exc):
    """Exceptions cross the result queue by pickle; guard against ones
    that can't (a broken queue feeder thread would look like a hang)."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return RuntimeError(
            f"worker raised unpicklable {type(exc).__name__}: {exc!r}")


def _worker_main(payload, task_conn, result_conn):
    """Worker process: build the engine once, replay streamed tasks.

    When the parent's tracer asked for worker capture (the ``trace``
    flag in the payload), the worker installs its own
    :class:`~repro.obs.Tracer` and, after every task, ships a drained
    span/metric payload back as an ``"obs"`` message on the same
    framed result pipe — the supervisor merges it into the parent
    trace with this process's real pid.  The worker's metrics registry
    is reset up front either way: a forked child inherits the parent's
    counts, which must not be shipped back and double-counted.
    """
    try:
        from ..core.replay import ReplayEngine
        from ..obs import Tracer, NullTracer, set_tracer, get_registry
        (flow, port_names, grouping, freq_hz, trace, gl_backend,
         gl_overlap, correlation) = pickle.loads(payload)
        get_registry().reset()
        # The parent's correlation attrs (job id, run key) stamp this
        # worker's spans too, so one job's spans join across pids.
        tracer = (Tracer(correlation=correlation) if trace
                  else NullTracer())
        set_tracer(tracer)
        t_init = time.perf_counter()
        # Engine construction compiles-or-cache-loads the gate-level
        # evaluation kernel, so that cost lands inside this span.
        with tracer.span("worker.init", cat="worker"):
            engine = ReplayEngine.from_flow(
                flow, port_names=port_names, grouping=grouping,
                freq_hz=freq_hz, gl_backend=gl_backend,
                overlap=gl_overlap)
        # One-time init is done: the supervisor re-arms the in-flight
        # task's deadline on receipt, so compile/load cost is excluded
        # from the batch's wall-clock budget.
        result_conn.send((None, "ready",
                          {"init_seconds": time.perf_counter() - t_init}))
    except BaseException as exc:
        result_conn.send((None, "init-error", f"{type(exc).__name__}: {exc}"))
        return

    def _flush_obs():
        if not tracer.enabled:
            return
        try:
            result_conn.send((None, "obs",
                              {"trace": tracer.drain(),
                               "metrics": get_registry().drain()}))
        except Exception:
            pass                 # observability must never kill a task

    _flush_obs()                 # ship worker.init before any task
    while True:
        try:
            task = task_conn.recv()
        except EOFError:
            return               # supervisor went away
        if task is None:
            return
        # A task is one *super-task*: a flat list of snapshots plus the
        # ``splits`` that carve it back into lane-batches.  With thread
        # overlap off every task holds exactly one batch (a single-
        # snapshot list when batch_lanes == 1; replay degenerates to
        # the scalar path for those); with overlap on, the engine runs
        # the batches concurrently on its thread pool.
        tidx, snaps, strict, fault, splits = task
        try:
            if fault is not None:
                from .faultinject import apply_worker_fault
                apply_worker_fault(fault)
            groups = []
            cursor = 0
            for size in splits:
                groups.append(snaps[cursor:cursor + size])
                cursor += size
            with tracer.span("worker.task", cat="worker", task=tidx,
                             lanes=len(snaps), batches=len(groups)):
                results = engine.replay_batches(groups, strict=strict)
            # Flush spans *before* the result: the pipe is FIFO, so by
            # the time the supervisor has parsed this task's result it
            # has necessarily merged this task's spans — the last
            # task's trace cannot be lost to supervisor teardown.
            _flush_obs()
            result_conn.send((tidx, "ok", results))
        except Exception as exc:
            _flush_obs()
            result_conn.send((tidx, "error", _shippable(exc)))


class _Worker:
    """Parent-side handle: one process, one task in flight at a time.

    Each worker talks to the supervisor over a *private* pair of pipes
    rather than a shared ``multiprocessing.Queue``.  A shared queue
    funnels every worker's results through one cross-process write
    lock, taken by a background feeder thread — so a worker dying at
    the wrong instant (timeout kill, OOM kill, injected crash) while
    its feeder holds the lock leaves the semaphore acquired forever
    and silently starves every *other* worker's results, which the
    supervisor can only read as a cascade of spurious timeouts and
    serial fallbacks.  With one pipe per worker there is exactly one
    writer and one reader per direction: a dying worker can corrupt
    nothing but its own channel, which is discarded with it.

    The parent side never blocks (and spawns no threads, which keeps
    forked respawns safe): task writes are buffered and pumped from
    the supervisor loop, and result reads parse ``Connection``'s
    length-prefixed wire framing out of a byte buffer — a worker
    killed mid-message leaves a partial frame that is simply never
    completed, not a read the supervisor is stuck in.
    """

    def __init__(self, ctx, payload):
        task_r, self._task_w = ctx.Pipe(duplex=False)
        self._res_r, res_w = ctx.Pipe(duplex=False)
        self.proc = ctx.Process(target=_worker_main,
                                args=(payload, task_r, res_w),
                                daemon=True)
        self.proc.start()
        task_r.close()
        res_w.close()
        os.set_blocking(self._task_w.fileno(), False)
        os.set_blocking(self._res_r.fileno(), False)
        self._outbox = deque()     # framed task bytes awaiting write
        self._inbox = bytearray()  # raw result bytes awaiting framing
        self.task = None           # task index in flight, or None
        self.deadline = None
        self.attempt = 0
        self.ready = False         # worker finished one-time engine init
        self.task_timeout = None   # plain timeout of the task in flight

    # ---- outgoing tasks (non-blocking, parent side) ----

    def _send(self, obj):
        payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        frame = struct.pack("!i", len(payload)) + payload
        self._outbox.append(memoryview(frame))
        self.pump()

    def pump(self):
        """Flush buffered task bytes; never blocks the supervisor."""
        while self._outbox:
            buf = self._outbox[0]
            try:
                n = os.write(self._task_w.fileno(), buf)
            except BlockingIOError:
                return             # pipe full; retry next loop tick
            except OSError:
                # Reader end is gone: the worker died.  Drop the
                # backlog — crash detection reassigns its task.
                self._outbox.clear()
                return
            if n == len(buf):
                self._outbox.popleft()
            else:
                self._outbox[0] = buf[n:]

    def dispatch(self, tidx, snaps, strict, fault, timeout, attempt,
                 splits, init_grace=0.0):
        self.task = tidx
        self.attempt = attempt
        self.task_timeout = timeout
        # A worker that has not reported ready yet is still paying its
        # one-time engine-init cost (kernel compile/load); extend the
        # deadline by the init grace so that cost is not charged to the
        # batch.  The deadline is re-armed to the plain timeout the
        # moment the ready message is drained.
        grace = 0.0 if self.ready else init_grace
        self.deadline = time.monotonic() + timeout + grace
        self._send((tidx, snaps, strict, fault, splits))

    # ---- incoming results (non-blocking, parent side) ----

    def poll_conn(self):
        """Connection to select on, or None once closed."""
        return None if self._res_r.closed else self._res_r

    def drain(self):
        """Decode every complete result message currently available.

        Non-blocking: a partial frame — worker still writing, or
        worker killed mid-message — stays buffered, never waited on.
        Works on a dead worker too (the pipe outlives the process), so
        a worker that answered and then died is credited, not retried.
        """
        if self._res_r.closed:
            return []
        fd = self._res_r.fileno()
        while True:
            try:
                chunk = os.read(fd, 1 << 16)
            except BlockingIOError:
                break
            except OSError:
                break
            if not chunk:          # EOF: writer end closed
                break
            self._inbox += chunk
        msgs = []
        while True:
            frame = self._next_frame()
            if frame is None:
                break
            msgs.append(pickle.loads(frame))
        return msgs

    def _next_frame(self):
        """Pop one ``Connection``-framed payload from the inbox."""
        buf = self._inbox
        if len(buf) < 4:
            return None
        size = int.from_bytes(buf[:4], "big", signed=True)
        start = 4
        if size == -1:             # Connection's >2 GiB long form
            if len(buf) < 12:
                return None
            size = int.from_bytes(buf[4:12], "big")
            start = 12
        if len(buf) < start + size:
            return None
        frame = bytes(buf[start:start + size])
        del buf[:start + size]
        return frame

    # ---- lifecycle ----

    def clear(self):
        self.task = None
        self.deadline = None

    def shutdown(self):
        """Polite stop for an idle, healthy worker."""
        try:
            self._send(None)
        except Exception:
            pass
        self.proc.join(timeout=2.0)
        if self.proc.is_alive():
            self.kill()
        else:
            self._close_pipes()

    def kill(self):
        self.proc.terminate()
        self.proc.join(timeout=2.0)
        if self.proc.is_alive():
            self.proc.kill()
            self.proc.join(timeout=2.0)
        self._close_pipes()

    def _close_pipes(self):
        for conn in (self._task_w, self._res_r):
            try:
                conn.close()
            except Exception:
                pass


def replay_supervised_stream(flow, snapshots, *, workers, port_names,
                             grouping=None, freq_hz=None, strict=True,
                             start_method=None, timeout=None,
                             max_retries=2, backoff_base=0.25,
                             fault_plan=None, serial_engine=None,
                             batch_lanes=1, gl_backend=None,
                             gl_overlap=None,
                             serial_gl_backend=None, init_grace=None,
                             order=None, cancel=None, report=None):
    """Stream supervised replays: yields ``(index, result)`` pairs.

    The streaming core of :func:`replay_supervised`.  Batches are
    dispatched incrementally and each completed replay is yielded *in
    completion order* as ``(index, result)`` where ``index`` is the
    snapshot's position in ``snapshots`` — the original index travels
    with the result, so an out-of-order completion can never be
    attributed to the wrong snapshot.

    ``order`` — optional sequence of snapshot positions giving the
    dispatch order; may be a strict subset, in which case only those
    snapshots are replayed.  This is how the adaptive sampling
    controller replays in confidence-driven order (and how incremental
    journal re-sampling replays only the missing snapshots).  Default:
    natural order over all snapshots, batched exactly as the
    historical path.

    ``cancel`` — optional :class:`repro.parallel.CancelToken`.  Once
    set, no further batches are dispatched; results that already
    arrived are still yielded, in-flight batches are *abandoned*
    (counted in ``report.cancelled``), and the pool is torn down
    politely — workers get the shutdown sentinel and a join grace
    before any kill, so cancellation does not register as a crash.

    ``report`` — optional :class:`ReplayHealthReport` to fill in;
    supplied by callers that need live/after-the-fact access to the
    health counters while consuming the stream.

    ``gl_overlap`` — thread-level batch overlap inside each worker
    process (default :func:`repro.gatelevel.resolve_overlap`, i.e.
    ``$REPRO_GL_OVERLAP`` or 1).  With overlap > 1 the unit of
    dispatch becomes a *super-task* of up to ``gl_overlap``
    consecutive lane-batches; the worker's engine replays them
    concurrently on its thread pool (the native ``run_cycles`` kernel
    releases the GIL for the whole trace).  Deadlines scale with the
    super-task's total snapshot count — as-if-serial, so the overlap
    speedup only ever adds headroom.

    Argument validation (and the :class:`ParallelReplayError` for an
    unpicklable payload) happens eagerly, before the first
    ``next()`` — callers that fall back to serial on that error never
    start a generator.  Other parameters are as
    :func:`replay_supervised`.
    """
    from ..obs import get_tracer, get_registry
    tracer = get_tracer()
    registry = get_registry()
    # Worker-side capture costs pickling traffic per task; only ask
    # for it when the current tracer wants a distributed trace.
    trace_workers = tracer.enabled and tracer.distributed

    snapshots = list(snapshots)
    n = len(snapshots)
    if report is None:
        report = ReplayHealthReport()
    report.total_snapshots = n
    report.batch_lanes = max(1, int(batch_lanes))
    if order is None:
        positions = None
    else:
        positions = [int(i) for i in order]
        if len(set(positions)) != len(positions):
            raise ValueError("order contains duplicate snapshot indices")
        if any(not 0 <= i < n for i in positions):
            raise ValueError("order index out of range")
        report.total_snapshots = len(positions)
    if n == 0 or positions == []:
        return iter(())
    from ..gatelevel.glcodegen import resolve_overlap
    gl_overlap = resolve_overlap(gl_overlap)
    try:
        payload = pickle.dumps((flow, list(port_names), grouping,
                                freq_hz, trace_workers, gl_backend,
                                gl_overlap, dict(tracer.correlation)),
                               protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise ParallelReplayError(
            f"replay payload is not picklable: {exc}") from exc
    if batch_lanes > 1:
        from ..core.replay import plan_replay_batches
        batches = plan_replay_batches(snapshots, batch_lanes,
                                      order=positions)
    elif positions is not None:
        batches = [[i] for i in positions]
    else:
        batches = [[i] for i in range(n)]
    # Super-tasks: with thread overlap each dispatch unit carries up to
    # ``gl_overlap`` consecutive lane-batches for the worker's thread
    # pool; with overlap off every task is exactly one batch and the
    # semantics are the historical per-batch ones.
    if gl_overlap > 1 and len(batches) > 1:
        tasks = [batches[i:i + gl_overlap]
                 for i in range(0, len(batches), gl_overlap)]
    else:
        tasks = [[batch] for batch in batches]
    n_tasks = len(tasks)
    workers = max(1, min(int(workers), n_tasks))
    if timeout is None:
        timeout = default_replay_timeout(
            max(s.replay_length for s in snapshots))
    if init_grace is None:
        init_grace = default_init_grace()
    report.workers = workers
    report.timeout_seconds = timeout

    return _supervise_stream(
        flow, snapshots, payload, tasks, workers=workers,
        port_names=port_names, grouping=grouping, freq_hz=freq_hz,
        strict=strict, start_method=start_method, timeout=timeout,
        max_retries=max_retries, backoff_base=backoff_base,
        fault_plan=fault_plan, serial_engine=serial_engine,
        gl_backend=gl_backend, serial_gl_backend=serial_gl_backend,
        init_grace=init_grace, cancel=cancel, report=report,
        tracer=tracer, registry=registry)


def _supervise_stream(flow, snapshots, payload, tasks, *, workers,
                      port_names, grouping, freq_hz, strict,
                      start_method, timeout, max_retries, backoff_base,
                      fault_plan, serial_engine, gl_backend,
                      serial_gl_backend, init_grace, cancel, report,
                      tracer, registry):
    """Generator body of :func:`replay_supervised_stream` (validated).

    ``tasks`` is a list of super-tasks, each a list of lane-batches
    (each a list of snapshot indices); ``flat`` is the per-task flat
    index list, which is also the order worker results come back in.
    """
    from ..core.replay import ReplayError
    from ..scan.snapshot import SnapshotError

    n_tasks = len(tasks)
    flat = [[i for batch in task for i in batch] for task in tasks]
    splits = [[len(batch) for batch in task] for task in tasks]

    ctx = _pick_context(start_method)
    pool = [_Worker(ctx, payload) for _ in range(workers)]
    registry.counter("supervisor.spawns").inc(workers)

    def _respawn(reason):
        report.respawns += 1
        registry.counter("supervisor.respawns").inc()
        tracer.instant("supervisor.respawn", cat="supervisor",
                       reason=reason)
        return _Worker(ctx, payload)

    completed = [False] * n_tasks
    attempts = [0] * n_tasks
    ready = deque(range(n_tasks))
    waiting = []                   # (eligible_monotonic_time, task index)
    done = 0
    events = deque()               # (index, result) awaiting yield

    def _get_serial_engine():
        nonlocal serial_engine
        if serial_engine is None:
            from ..core.replay import ReplayEngine
            serial_engine = ReplayEngine.from_flow(
                flow, port_names=port_names, grouping=grouping,
                freq_hz=freq_hz,
                gl_backend=serial_gl_backend or gl_backend)
        return serial_engine

    def _complete(tidx, batch_results, serial=False):
        nonlocal done
        if completed[tidx]:
            return
        completed[tidx] = True
        done += 1
        for idx, result in zip(flat[tidx], batch_results):
            if serial:
                report.completed_serial += 1
            else:
                report.completed_parallel += 1
            events.append((idx, result))

    def _batch_detail(tidx, detail):
        size = len(flat[tidx])
        if size > 1:
            return f"{detail} (batch of {size} snapshots)"
        return detail

    def _retry_or_fallback(tidx, kind, detail):
        """Record the incident, then either reschedule or go serial.

        Incidents are attributed to the task's first snapshot."""
        if completed[tidx]:
            return
        first = flat[tidx][0]
        attempts[tidx] += 1
        report.record(kind, first, snapshots[first].cycle, attempts[tidx],
                      _batch_detail(tidx, detail))
        if attempts[tidx] > max_retries:
            report.serial_fallbacks += 1
            report.record("serial-fallback", first, snapshots[first].cycle,
                          attempts[tidx],
                          _batch_detail(
                              tidx,
                              "retries exhausted; replaying in-process"))
            # Replay each lane-batch of the task individually — a
            # super-task's flat group may exceed the lane limit.
            _complete(tidx,
                      _get_serial_engine().replay_batches(
                          [[snapshots[i] for i in batch]
                           for batch in tasks[tidx]], strict=strict),
                      serial=True)
        else:
            report.retries += 1
            # Full jitter: draw the delay uniformly from [0, cap]
            # rather than sleeping exactly cap.  Deterministic delays
            # make simultaneously-killed workers respawn and
            # re-dispatch in lockstep — hitting whatever killed them
            # (memory spike, cache stampede) all at once again.
            cap = backoff_base * (2 ** (attempts[tidx] - 1))
            delay = _BACKOFF_RNG.uniform(0.0, cap)
            waiting.append((time.monotonic() + delay, tidx))

    cancelled = False
    try:
        while done < n_tasks:
            cancelled = cancel is not None and cancel.cancelled
            now = time.monotonic()
            if waiting:
                still = []
                for eligible, tidx in waiting:
                    if eligible <= now:
                        ready.append(tidx)
                    else:
                        still.append((eligible, tidx))
                waiting[:] = still

            for w in pool:
                w.pump()
                if (not cancelled and w.task is None and ready
                        and w.proc.is_alive()):
                    tidx = ready.popleft()
                    indices = flat[tidx]
                    fault = (fault_plan.pick(indices[0],
                                             snapshots[indices[0]])
                             if fault_plan is not None else None)
                    # Deadline scales with the task's total snapshot
                    # count, as if its batches ran serially: overlap
                    # only ever adds headroom, never tightens it.
                    w.dispatch(tidx, [snapshots[i] for i in indices],
                               strict, fault, timeout * len(indices),
                               attempts[tidx] + 1, splits[tidx],
                               init_grace=init_grace)

            # Sleep until some worker has bytes for us (or the poll
            # tick elapses), then drain every complete message from
            # every worker — dead ones included — before health
            # checks, so a worker that answered and then died is
            # credited, not retried.  A cancelled stream skips the
            # sleep: one final non-blocking drain credits whatever
            # already arrived, then the loop exits.
            if not cancelled:
                conns = [c for c in (w.poll_conn() for w in pool
                                     if w.proc.is_alive())
                         if c is not None]
                if conns:
                    _mpconn.wait(conns, timeout=_POLL_S)
                else:
                    time.sleep(_POLL_S)
            for w in pool:
                for msg in w.drain():
                    tidx, status, body = msg
                    if status == "obs":
                        # Worker span/metric shipment: merge into the
                        # parent trace with the worker's own pid/tid.
                        tracer.ingest(body.get("trace"))
                        registry.merge(body.get("metrics"),
                                       source=f"worker-pid-"
                                              f"{w.proc.pid}")
                        continue
                    if status == "ready":
                        # One-time engine init done: re-arm the
                        # in-flight task's deadline to the plain task
                        # timeout, excluding the compile/load cost.
                        w.ready = True
                        if w.task is not None and w.task_timeout:
                            w.deadline = (time.monotonic()
                                          + w.task_timeout)
                        continue
                    if status == "init-error":
                        raise ParallelReplayError(
                            f"replay worker failed to initialize: {body}")
                    if w.task == tidx:
                        w.clear()
                    if completed[tidx]:
                        continue
                    if status == "ok":
                        _complete(tidx, body)
                    else:
                        if isinstance(body, (ReplayError, SnapshotError)):
                            # Verification failure: deterministic, and
                            # the whole point — detection, not a fault
                            # to heal.
                            raise body
                        report.worker_errors += 1
                        _retry_or_fallback(
                            tidx, "worker-error",
                            f"{type(body).__name__}: {body}")
            while events:
                yield events.popleft()

            if cancelled:
                abandoned = sum(len(flat[t]) for t in range(n_tasks)
                                if not completed[t])
                if abandoned:
                    report.cancelled = abandoned
                    registry.counter("supervisor.cancelled").inc(abandoned)
                    tracer.instant(
                        "supervisor.cancelled", cat="supervisor",
                        snapshots=abandoned,
                        reason=str(getattr(cancel, "reason", None) or ""))
                break

            now = time.monotonic()
            for i, w in enumerate(pool):
                if w.task is None:
                    if not w.proc.is_alive() and (ready or waiting):
                        # Idle corpse with work outstanding: replace it.
                        w._close_pipes()
                        pool[i] = _respawn("idle-corpse")
                    continue
                tidx = w.task
                if not w.proc.is_alive():
                    report.crashes += 1
                    exitcode = w.proc.exitcode
                    w.clear()
                    w._close_pipes()
                    pool[i] = _respawn("worker-crash")
                    _retry_or_fallback(
                        tidx, "worker-crash",
                        f"worker died mid-replay (exitcode {exitcode})")
                elif now > w.deadline:
                    report.timeouts += 1
                    w.clear()
                    w.kill()
                    pool[i] = _respawn("timeout")
                    _retry_or_fallback(
                        tidx, "timeout",
                        f"no result within {timeout * len(flat[tidx]):.1f}s;"
                        f" worker killed")
            while events:
                yield events.popleft()
    finally:
        for w in pool:
            if w.proc.is_alive() and (w.task is None or cancelled):
                # Idle workers — and busy ones whose batch was merely
                # abandoned by a cancel — get the polite sentinel and a
                # join grace; only unresponsive ones are killed.
                w.shutdown()
            else:
                w.kill()


def replay_supervised(flow, snapshots, *, workers, port_names,
                      grouping=None, freq_hz=None, strict=True,
                      start_method=None, timeout=None, max_retries=2,
                      backoff_base=0.25, fault_plan=None, on_result=None,
                      serial_engine=None, batch_lanes=1, gl_backend=None,
                      gl_overlap=None, serial_gl_backend=None,
                      init_grace=None):
    """Replay ``snapshots`` under supervision; order-preserving.

    Returns ``(results, ReplayHealthReport)``.  ``on_result(index,
    result)`` fires as each replay completes (in completion order, with
    the snapshot's position in ``snapshots``) — the hook the crash-safe
    run journal uses to persist progress incrementally.

    This is the collecting wrapper over
    :func:`replay_supervised_stream`, which dispatches batches
    incrementally and yields each result as it completes; streaming
    consumers (the adaptive sampling controller) use the generator
    directly.

    ``batch_lanes`` > 1 packs snapshots into bit-lane batches (see
    :func:`repro.core.replay.make_replay_batches`): the unit of
    dispatch, deadline, retry, and serial fallback becomes the batch,
    with the per-snapshot ``timeout`` scaled by each batch's size.
    With the default of 1 every batch is a single snapshot and the
    semantics are exactly the historical per-snapshot ones.

    ``fault_plan`` (a :class:`repro.robust.FaultPlan`) deliberately
    sabotages chosen dispatches; it exists for the fault-injection
    harness and is consumed supervisor-side so a retried snapshot is
    not re-faulted once the plan is exhausted.  Faults are matched on
    the batch's first snapshot.

    ``serial_engine`` is the engine used for last-resort in-process
    replays; built lazily from ``flow`` when not supplied.
    ``serial_gl_backend`` overrides the gate-level backend of that
    lazily-built engine — the job service passes ``"interp"`` so the
    in-process fallback never executes a possibly-poisoned compiled
    kernel inside the supervising process (backends are bit-identical,
    so the results are unchanged).  ``init_grace`` (seconds, default
    :func:`default_init_grace`) is the extra deadline headroom granted
    while a worker is still paying its one-time engine-init cost.
    """
    snapshots = list(snapshots)
    report = ReplayHealthReport()
    results = [None] * len(snapshots)
    for idx, result in replay_supervised_stream(
            flow, snapshots, workers=workers, port_names=port_names,
            grouping=grouping, freq_hz=freq_hz, strict=strict,
            start_method=start_method, timeout=timeout,
            max_retries=max_retries, backoff_base=backoff_base,
            fault_plan=fault_plan, serial_engine=serial_engine,
            batch_lanes=batch_lanes, gl_backend=gl_backend,
            gl_overlap=gl_overlap,
            serial_gl_backend=serial_gl_backend, init_grace=init_grace,
            report=report):
        results[idx] = result
        if on_result is not None:
            on_result(idx, result)
    return results, report
