"""Crash-safe run journal: append-only, checksummed, resumable.

``run_strober(..., journal=path)`` appends every durable unit of
progress — the run's identity, each captured snapshot, the FAME
simulation outcome, and each completed replay result — as a framed
record::

    <4s magic "RPJ1"> <u8 type> <u32 payload_len> <u32 crc32(payload)>
    <payload: pickle>

Each ``append`` is flushed and ``fsync``'d before returning, so after a
crash the journal contains every record that was reported complete plus
at most one torn tail.  :func:`read_journal` verifies the frame and CRC
of every record; a truncated or corrupted *tail* is dropped (and
physically truncated off the file) with a warning rather than a crash —
exactly the recovery an interrupted writer needs.

Resume contract (:func:`load_resume`): a journal whose META record
matches the requested run's parameters (ignoring the advisory
provenance keys in ``_ADVISORY_META_KEYS``, which record *how* a run
executed — e.g. the bit-identical gate-level backend — rather than
what it computed), and whose SIM record landed, lets ``run_strober``
skip the FAME simulation entirely and replay only the snapshots
without a RESULT record.  Snapshots are stored sealed
(integrity-checksummed, see :meth:`ReplayableSnapshot.seal`), so a
journal damaged *in the middle* — past what tail-truncation heals — is
still detected at replay time instead of quietly shifting the energy
estimate.
"""

from __future__ import annotations

import os
import pickle
import struct
import warnings
import zlib
from dataclasses import dataclass, field

MAGIC = b"RPJ1"
_HEADER = struct.Struct("<4sBII")

TYPE_META = 1        # dict of run-identity parameters
TYPE_SNAPSHOT = 2    # {"index": int, "snapshot": ReplayableSnapshot}
TYPE_SIM = 3         # FAME outcome: cycles, instret, exit_code, counters
TYPE_RESULT = 4      # {"index": int, "result": ReplayResult}
TYPE_CONTROL = 5     # {"controller": sampling summary dict} — written
                     # once per *adaptive* run completion (stop reason,
                     # sample size, final rel error); fixed-sample runs
                     # write none, keeping their byte stream identical
                     # to pre-adaptive journals.  Readers from before
                     # this type existed skip it (foreign-record rule).

# Service-level job records (repro.service): the job daemon journals
# its queue in the same CRC-framed format, in a separate file.  Record
# payloads carry their own ``"v"`` schema version, and every reader —
# the run-journal resume below included — must *skip* record types it
# does not know rather than fail: a journal written by a newer daemon
# has to stay resumable by an older one (forward compatibility).
TYPE_JOB = 16         # {"v": 1, "id": str, "spec": dict} — job accepted
TYPE_JOB_UPDATE = 17  # {"v": 1, "id": str, "state": str, ...} — terminal


class JournalError(Exception):
    pass


class RunJournal:
    """Append-only record log; one fsync per record."""

    def __init__(self, path):
        self.path = path
        self._f = None

    def __enter__(self):
        return self.open()

    def __exit__(self, *exc):
        self.close()

    def open(self):
        if self._f is None:
            parent = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(parent, exist_ok=True)
            self._f = open(self.path, "ab")
        return self

    def close(self):
        if self._f is not None:
            self._f.close()
            self._f = None

    def append(self, rtype, obj):
        """Durably append one record (flush + fsync before returning)."""
        if self._f is None:
            self.open()
        try:
            payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise JournalError(
                f"journal record of type {rtype} is not picklable: "
                f"{exc}") from exc
        from ..obs import get_registry
        get_registry().counter("journal.records").inc()
        get_registry().counter("journal.bytes").inc(
            _HEADER.size + len(payload))
        self._f.write(_HEADER.pack(MAGIC, rtype, len(payload),
                                   zlib.crc32(payload)))
        self._f.write(payload)
        self._f.flush()
        os.fsync(self._f.fileno())

    def reset(self):
        """Truncate to empty — the start of a fresh (non-resumed) run."""
        self.close()
        with open(self.path, "wb") as f:
            f.flush()
            os.fsync(f.fileno())
        self.open()


def read_journal(path, repair=True):
    """Return ``[(rtype, obj), ...]`` for every intact record.

    A torn or corrupted tail (short header, bad magic, CRC mismatch,
    undecodable payload) ends the scan with a warning; with
    ``repair=True`` the damage is also truncated off the file so the
    journal is immediately appendable again.
    """
    with open(path, "rb") as f:
        data = f.read()
    records = []
    offset = 0
    good = 0
    damage = None
    while offset < len(data):
        if offset + _HEADER.size > len(data):
            damage = "torn record header"
            break
        magic, rtype, length, crc = _HEADER.unpack_from(data, offset)
        if magic != MAGIC:
            damage = f"bad record magic at offset {offset}"
            break
        payload = data[offset + _HEADER.size:offset + _HEADER.size + length]
        if len(payload) < length:
            damage = "torn record payload"
            break
        if zlib.crc32(payload) != crc:
            damage = f"record checksum mismatch at offset {offset}"
            break
        try:
            obj = pickle.loads(payload)
        except Exception as exc:
            damage = f"undecodable record at offset {offset}: {exc}"
            break
        offset += _HEADER.size + length
        good = offset
        records.append((rtype, obj))
    if damage is not None:
        dropped = len(data) - good
        warnings.warn(
            f"run journal {path}: {damage}; dropping {dropped} trailing "
            f"byte(s), keeping {len(records)} good record(s)",
            RuntimeWarning, stacklevel=2)
        if repair:
            os.truncate(path, good)
    return records


@dataclass
class ResumeState:
    """Everything a matching journal lets ``run_strober`` skip."""

    meta: dict
    sim: dict
    snapshots: list
    results: dict = field(default_factory=dict)   # index -> ReplayResult
    # Sampling-controller records, in journal order: one summary dict
    # per completed adaptive pass over this journal (empty for fixed
    # runs and journals written before TYPE_CONTROL existed).
    controls: list = field(default_factory=list)


class _MemoryShim:
    def __init__(self, counters):
        self.counters = counters


class JournaledWorkloadResult:
    """``WorkloadResult`` stand-in reconstructed from a run journal."""

    resumed = True

    def __init__(self, sim, snapshots):
        self.cycles = sim["cycles"]
        self.instret = sim["instret"]
        self.exit_code = sim["exit_code"]
        self.snapshots = snapshots
        self.memory = _MemoryShim(sim["dram_counters"])

    @property
    def passed(self):
        return self.exit_code == 0

    @property
    def cpi(self):
        return (self.cycles / self.instret if self.instret
                else float("inf"))


def load_resume(path, expected_meta):
    """Parse ``path`` into a :class:`ResumeState`, or None to start fresh.

    None (with a warning where the journal held *something*) means: no
    journal, an empty journal, a journal for a different run, or a
    journal interrupted before the FAME simulation finished — all cases
    where the only correct move is to rerun from the top.
    """
    if not os.path.exists(path) or os.path.getsize(path) == 0:
        return None
    from ..obs import get_tracer
    with get_tracer().span("journal.resume", cat="journal", path=path):
        return _load_resume(path, expected_meta)


# Run-key entries that are provenance, not identity: they describe how
# a run was executed, not what it computed, so resume comparison strips
# them from both sides.  The gate-level evaluation backend and the
# thread-overlap setting are advisory because every backend — and any
# overlap — is bit-identical by construction: a journal written under
# one backend or overlap resumes under another (and journals from
# before the keys existed resume under any).  The adaptive-sampling
# knobs are advisory because every replay result is a pure function of
# its snapshot: which subset got replayed is provenance, and keeping
# the knobs out of the identity is precisely what lets a fixed-sample
# journal be reopened with ``target_rel_error`` (or a tighter target)
# to replay only the additional snapshots needed.
_ADVISORY_META_KEYS = ("gl_backend", "gl_overlap", "target_rel_error",
                       "min_sample", "max_sample")


def _identity_meta(meta):
    if not isinstance(meta, dict):
        return meta
    return {k: v for k, v in meta.items()
            if k not in _ADVISORY_META_KEYS}


def _load_resume(path, expected_meta):
    records = read_journal(path)
    if not records:
        return None
    rtype, meta = records[0]
    if rtype != TYPE_META or _identity_meta(meta) != _identity_meta(
            expected_meta):
        warnings.warn(
            f"run journal {path} belongs to a different run "
            f"(parameters changed?); starting fresh", RuntimeWarning,
            stacklevel=2)
        return None
    sim = None
    snapshots = {}
    results = {}
    controls = []
    for rtype, obj in records[1:]:
        if rtype == TYPE_SNAPSHOT:
            snapshots[obj["index"]] = obj["snapshot"]
        elif rtype == TYPE_SIM:
            sim = obj
        elif rtype == TYPE_RESULT:
            results[obj["index"]] = obj["result"]
        elif rtype == TYPE_CONTROL:
            controls.append(obj.get("controller", obj))
    if sim is None:
        # Interrupted mid-simulation: snapshots (if any) came from an
        # unfinished reservoir and must not be trusted.
        warnings.warn(
            f"run journal {path} was interrupted before the simulation "
            f"finished; rerunning it", RuntimeWarning, stacklevel=2)
        return None
    ordered = []
    for i in range(sim["n_snapshots"]):
        if i not in snapshots:
            warnings.warn(
                f"run journal {path} is missing snapshot {i}; "
                f"starting fresh", RuntimeWarning, stacklevel=2)
            return None
        ordered.append(snapshots[i])
    return ResumeState(meta=meta, sim=sim, snapshots=ordered,
                       results=results, controls=controls)
