"""Robustness layer for the replay pipeline.

Strober's accuracy claim rests on every sampled snapshot replaying to
completion with outputs verified against the captured I/O trace
(Section III-B).  The parallel replay pool and the on-disk artifact
cache introduce failure classes the serial in-process path never had —
hung or crashed workers, truncated cache entries, corrupted snapshot
state — and this package makes them either *detected* or *recovered*:

* :mod:`repro.robust.supervisor` — a supervised worker pool with
  per-snapshot timeouts, crash detection, retry with exponential
  backoff, and graceful degradation to in-process serial replay; every
  recovery action lands in a structured :class:`ReplayHealthReport`.
* :mod:`repro.robust.journal` — an append-only, checksummed, fsync'd
  run journal that lets an interrupted ``run_strober`` resume from the
  last good record instead of restarting the FAME simulation and all
  replays.
* :mod:`repro.robust.faultinject` — deliberate fault injection
  (snapshot bit-flips, cache/journal corruption, worker kills and
  stalls) that turns the detect-or-recover guarantees into executable
  tests.
"""

from .supervisor import (
    ReplayHealthReport, ReplayIncident, replay_supervised,
    replay_supervised_stream, default_replay_timeout, default_init_grace,
)
from .journal import (
    RunJournal, JournalError, read_journal,
    TYPE_META, TYPE_SNAPSHOT, TYPE_SIM, TYPE_RESULT, TYPE_CONTROL,
    TYPE_JOB, TYPE_JOB_UPDATE,
)
from .faultinject import (
    FaultSpec, FaultPlan, flip_snapshot_bit, corrupt_file,
    corrupt_cache_entry, corrupt_journal_tail, run_campaign,
    poison_cache_entry, enospc_cache_writes, run_service_campaign,
)

__all__ = [
    "ReplayHealthReport", "ReplayIncident", "replay_supervised",
    "replay_supervised_stream",
    "default_replay_timeout", "default_init_grace",
    "RunJournal", "JournalError", "read_journal",
    "TYPE_META", "TYPE_SNAPSHOT", "TYPE_SIM", "TYPE_RESULT",
    "TYPE_CONTROL", "TYPE_JOB", "TYPE_JOB_UPDATE",
    "FaultSpec", "FaultPlan", "flip_snapshot_bit", "corrupt_file",
    "corrupt_cache_entry", "corrupt_journal_tail", "run_campaign",
    "poison_cache_entry", "enospc_cache_writes", "run_service_campaign",
]
