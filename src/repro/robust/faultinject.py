"""Deliberate fault injection for the replay pipeline.

Correctness machinery that has never been watched firing is a hope, not
a guarantee (the lesson of compiler-test infrastructures that inject
faults to prove the checkers check).  This module sabotages the replay
pipeline on purpose — bit-flips in captured snapshot state, truncated
or corrupted cache entries and journal records, workers killed or
stalled mid-replay — and the accompanying test suite asserts the
robustness layer either *detects* the damage (strict-mode mismatch,
checksum rejection) or *recovers* from it (retry, respawn, serial
fallback, journal tail repair).

Two halves:

* **Worker sabotage** — :class:`FaultSpec` / :class:`FaultPlan` plug
  into :func:`repro.robust.supervisor.replay_supervised`; the plan is
  consumed supervisor-side, so a snapshot whose dispatch was sabotaged
  is not re-faulted on retry (modelling transient faults).
* **Data corruption** — :func:`flip_snapshot_bit`,
  :func:`corrupt_file`, :func:`corrupt_cache_entry`,
  :func:`corrupt_journal_tail` damage artifacts the way real storage
  and memory do.

:func:`run_campaign` strings the standard battery together and reports
one verdict per fault — the executable form of the acceptance criteria.
"""

from __future__ import annotations

import copy
import os
import random
import tempfile
import time
from dataclasses import dataclass


@dataclass
class FaultSpec:
    """One deliberate fault, executed inside a replay worker."""

    kind: str                # "kill" | "stall" | "error"
    index: int = None        # snapshot position to hit (None = any)
    times: int = 1           # how many dispatch attempts to sabotage
    seconds: float = 3600.0  # stall duration (stall faults)
    exit_code: int = 43      # worker exit status (kill faults)


class FaultPlan:
    """Decides which task dispatches get sabotaged.

    ``pick`` runs in the *supervisor* (parent) process, so consuming a
    spec's ``times`` budget there guarantees the retry of a sabotaged
    snapshot runs clean — the definition of a transient fault.
    """

    def __init__(self, specs):
        self.specs = list(specs)

    def pick(self, index, snapshot):
        for spec in self.specs:
            if spec.times > 0 and (spec.index is None
                                   or spec.index == index):
                spec.times -= 1
                return spec
        return None


def apply_worker_fault(spec):
    """Executed inside a worker process just before a replay."""
    if spec.kind == "kill":
        os._exit(spec.exit_code)
    elif spec.kind == "stall":
        time.sleep(spec.seconds)
    elif spec.kind == "error":
        raise RuntimeError(
            f"injected transient worker fault (snapshot {spec.index})")
    else:
        raise ValueError(f"unknown fault kind {spec.kind!r}")


# -- data corruption ---------------------------------------------------------


def flip_snapshot_bit(snapshot, where="state", rng=None):
    """Flip one bit of a snapshot in place; returns a description.

    ``where="state"`` hits a captured register (a sealed snapshot must
    then fail ``validate()``); ``where="trace"`` hits a recorded output
    token (an unsealed snapshot must then fail strict replay).
    """
    rng = rng or random.Random(0)
    if where == "state":
        paths = sorted(snapshot.state.regs)
        path = paths[rng.randrange(len(paths))]
        snapshot.state.regs[path] ^= 1
        return f"flipped bit 0 of register {path}"
    if where == "trace":
        cycles = [i for i, d in enumerate(snapshot.output_trace) if d]
        cyc = cycles[rng.randrange(len(cycles))]
        names = sorted(snapshot.output_trace[cyc])
        name = names[rng.randrange(len(names))]
        snapshot.output_trace[cyc][name] ^= 1
        return f"flipped bit 0 of output {name} at trace cycle {cyc}"
    raise ValueError(f"unknown flip target {where!r}")


def corrupt_file(path, mode="truncate", rng=None):
    """Damage an on-disk artifact the way storage does; returns a
    description.  ``truncate`` halves the file (torn write);
    ``bitflip`` flips one bit mid-file (media error)."""
    size = os.path.getsize(path)
    if mode == "truncate":
        keep = size // 2
        os.truncate(path, keep)
        return f"truncated {path} from {size} to {keep} byte(s)"
    if mode == "bitflip":
        rng = rng or random.Random(0)
        offset = size // 2 if size else 0
        with open(path, "r+b") as f:
            f.seek(offset)
            byte = f.read(1)
            f.seek(offset)
            f.write(bytes([byte[0] ^ 0x40]))
        return f"flipped a bit of byte {offset} in {path}"
    raise ValueError(f"unknown corruption mode {mode!r}")


def corrupt_cache_entry(cache, kind, key, mode="truncate"):
    """Damage one artifact-cache entry on disk."""
    return corrupt_file(cache._path(kind, key), mode=mode)


def corrupt_journal_tail(path, mode="truncate"):
    """Damage the tail of a run journal (torn final record)."""
    size = os.path.getsize(path)
    if mode == "truncate":
        os.truncate(path, max(0, size - 3))
        return f"tore 3 byte(s) off the tail of {path}"
    if mode == "bitflip":
        offset = max(0, size - 2)
        with open(path, "r+b") as f:
            f.seek(offset)
            byte = f.read(1)
            f.seek(offset)
            f.write(bytes([byte[0] ^ 0x40]))
        return f"flipped a bit of tail byte {offset} in {path}"
    raise ValueError(f"unknown corruption mode {mode!r}")


# -- the standard campaign ---------------------------------------------------


def _result_key(result):
    return (result.snapshot_cycle, result.cycles, result.mismatches,
            result.power.total_w,
            tuple(sorted(result.power.by_group.items())))


def run_campaign(engine, snapshots, workers=2, timeout=10.0,
                 backoff_base=0.05):
    """Run the standard fault battery; returns ``{fault: verdict}``.

    Every verdict must be ``"recovered"`` (the run completed with
    results identical to a clean run and the incident on the health
    report) or ``"detected"`` (the run refused to produce a number).
    Anything else — a silent wrong answer, a hang — shows up as
    ``"missed"`` and is a robustness bug.
    """
    from .supervisor import replay_supervised
    from .journal import RunJournal, read_journal, TYPE_META
    from ..core.replay import ReplayError
    from ..scan.snapshot import SnapshotError

    snapshots = list(snapshots)
    baseline = [_result_key(r)
                for r in engine.replay_all(snapshots, workers=1)]
    verdicts = {}

    def supervised(snaps, plan=None):
        return replay_supervised(
            engine.flow, snaps, workers=workers,
            port_names=engine._port_names, grouping=engine.grouping,
            freq_hz=engine.freq_hz, strict=True, timeout=timeout,
            backoff_base=backoff_base, fault_plan=plan,
            serial_engine=engine)

    def expect_recovery(name, plan):
        try:
            results, health = supervised(snapshots, plan)
        except Exception:
            verdicts[name] = "missed"
            return
        ok = ([_result_key(r) for r in results] == baseline
              and not health.healthy)
        verdicts[name] = "recovered" if ok else "missed"

    expect_recovery("worker-kill",
                    FaultPlan([FaultSpec("kill", index=0)]))
    expect_recovery("worker-stall",
                    FaultPlan([FaultSpec("stall", index=1,
                                         seconds=timeout * 10)]))
    expect_recovery("worker-error",
                    FaultPlan([FaultSpec("error", index=0)]))

    def expect_detection(name, snaps, exc_types):
        try:
            supervised(snaps)
        except exc_types:
            verdicts[name] = "detected"
        except Exception:
            verdicts[name] = "missed"
        else:
            verdicts[name] = "missed"

    flipped = copy.deepcopy(snapshots)
    flip_snapshot_bit(flipped[0], where="state")
    expect_detection("snapshot-bitflip", flipped, SnapshotError)

    unsealed = copy.deepcopy(snapshots)
    unsealed[0].checksum = None
    flip_snapshot_bit(unsealed[0], where="trace")
    expect_detection("trace-bitflip", unsealed, ReplayError)

    # Cache corruption: a damaged entry must be dropped and rebuilt.
    from ..parallel.cache import ArtifactCache
    with tempfile.TemporaryDirectory() as tmp:
        cache = ArtifactCache(tmp)
        key = "ab" * 20
        cache.put("campaign", key, {"x": 1})
        corrupt_cache_entry(cache, "campaign", key, mode="bitflip")
        import warnings as _warnings
        with _warnings.catch_warnings():
            _warnings.simplefilter("ignore")
            dropped = cache.get("campaign", key) is None
        rebuilt = (cache.put("campaign", key, {"x": 1}) is not None
                   and cache.get("campaign", key) == {"x": 1})
        verdicts["cache-corruption"] = (
            "recovered" if dropped and rebuilt else "missed")

        # Journal tail corruption: torn record truncated, not fatal.
        jpath = os.path.join(tmp, "run.journal")
        with RunJournal(jpath) as journal:
            journal.append(TYPE_META, {"campaign": True})
            journal.append(TYPE_META, {"record": 2})
        corrupt_journal_tail(jpath, mode="bitflip")
        with _warnings.catch_warnings():
            _warnings.simplefilter("ignore")
            records = read_journal(jpath)
        verdicts["journal-corruption"] = (
            "recovered" if len(records) == 1
            and records[0] == (TYPE_META, {"campaign": True})
            else "missed")

    return verdicts
