"""Deliberate fault injection for the replay pipeline.

Correctness machinery that has never been watched firing is a hope, not
a guarantee (the lesson of compiler-test infrastructures that inject
faults to prove the checkers check).  This module sabotages the replay
pipeline on purpose — bit-flips in captured snapshot state, truncated
or corrupted cache entries and journal records, workers killed or
stalled mid-replay — and the accompanying test suite asserts the
robustness layer either *detects* the damage (strict-mode mismatch,
checksum rejection) or *recovers* from it (retry, respawn, serial
fallback, journal tail repair).

Two halves:

* **Worker sabotage** — :class:`FaultSpec` / :class:`FaultPlan` plug
  into :func:`repro.robust.supervisor.replay_supervised`; the plan is
  consumed supervisor-side, so a snapshot whose dispatch was sabotaged
  is not re-faulted on retry (modelling transient faults).
* **Data corruption** — :func:`flip_snapshot_bit`,
  :func:`corrupt_file`, :func:`corrupt_cache_entry`,
  :func:`corrupt_journal_tail` damage artifacts the way real storage
  and memory do.

:func:`run_campaign` strings the standard battery together and reports
one verdict per fault — the executable form of the acceptance criteria.
"""

from __future__ import annotations

import contextlib
import copy
import errno
import os
import random
import shutil
import tempfile
import time
from dataclasses import dataclass


@dataclass
class FaultSpec:
    """One deliberate fault, executed inside a replay worker."""

    kind: str                # "kill" | "stall" | "error"
    index: int = None        # snapshot position to hit (None = any)
    times: int = 1           # how many dispatch attempts to sabotage
    seconds: float = 3600.0  # stall duration (stall faults)
    exit_code: int = 43      # worker exit status (kill faults)


class FaultPlan:
    """Decides which task dispatches get sabotaged.

    ``pick`` runs in the *supervisor* (parent) process, so consuming a
    spec's ``times`` budget there guarantees the retry of a sabotaged
    snapshot runs clean — the definition of a transient fault.
    """

    def __init__(self, specs):
        self.specs = list(specs)

    def pick(self, index, snapshot):
        for spec in self.specs:
            if spec.times > 0 and (spec.index is None
                                   or spec.index == index):
                spec.times -= 1
                return spec
        return None


def apply_worker_fault(spec):
    """Executed inside a worker process just before a replay."""
    if spec.kind == "kill":
        os._exit(spec.exit_code)
    elif spec.kind == "stall":
        time.sleep(spec.seconds)
    elif spec.kind == "error":
        raise RuntimeError(
            f"injected transient worker fault (snapshot {spec.index})")
    else:
        raise ValueError(f"unknown fault kind {spec.kind!r}")


# -- data corruption ---------------------------------------------------------


def flip_snapshot_bit(snapshot, where="state", rng=None):
    """Flip one bit of a snapshot in place; returns a description.

    ``where="state"`` hits a captured register (a sealed snapshot must
    then fail ``validate()``); ``where="trace"`` hits a recorded output
    token (an unsealed snapshot must then fail strict replay).
    """
    rng = rng or random.Random(0)
    if where == "state":
        paths = sorted(snapshot.state.regs)
        path = paths[rng.randrange(len(paths))]
        snapshot.state.regs[path] ^= 1
        return f"flipped bit 0 of register {path}"
    if where == "trace":
        cycles = [i for i, d in enumerate(snapshot.output_trace) if d]
        cyc = cycles[rng.randrange(len(cycles))]
        names = sorted(snapshot.output_trace[cyc])
        name = names[rng.randrange(len(names))]
        snapshot.output_trace[cyc][name] ^= 1
        return f"flipped bit 0 of output {name} at trace cycle {cyc}"
    raise ValueError(f"unknown flip target {where!r}")


def corrupt_file(path, mode="truncate", rng=None):
    """Damage an on-disk artifact the way storage does; returns a
    description.  ``truncate`` halves the file (torn write);
    ``bitflip`` flips one bit mid-file (media error)."""
    size = os.path.getsize(path)
    if mode == "truncate":
        keep = size // 2
        os.truncate(path, keep)
        return f"truncated {path} from {size} to {keep} byte(s)"
    if mode == "bitflip":
        rng = rng or random.Random(0)
        offset = size // 2 if size else 0
        with open(path, "r+b") as f:
            f.seek(offset)
            byte = f.read(1)
            f.seek(offset)
            f.write(bytes([byte[0] ^ 0x40]))
        return f"flipped a bit of byte {offset} in {path}"
    raise ValueError(f"unknown corruption mode {mode!r}")


def corrupt_cache_entry(cache, kind, key, mode="truncate"):
    """Damage one artifact-cache entry on disk."""
    return corrupt_file(cache._path(kind, key), mode=mode)


def poison_cache_entry(cache, kind, key, payload):
    """Replace a cache entry with a *well-framed* wrong artifact.

    Unlike :func:`corrupt_cache_entry` — which damages the frame so the
    CRC check catches it — a poisoned entry passes every integrity
    check and fails only when its consumer tries to use it (a compiled
    kernel whose ``so`` bytes are not a loadable shared object, say).
    This is the fault class the service's backend circuit breaker and
    the codegen layer's load-validation exist for.
    """
    if cache.put(kind, key, payload) is None:
        raise RuntimeError(f"could not poison cache entry {kind}/{key}")
    return f"poisoned cache entry {kind}/{key[:12]}…"


def poisoned_glso_payload():
    """A glso entry that frames and versions correctly but whose
    shared object cannot possibly load."""
    from ..gatelevel.glcodegen import GLCODEGEN_VERSION
    return {"version": GLCODEGEN_VERSION,
            "source": "/* poisoned by the fault campaign */",
            "so": b"\x7fELFnot-actually-a-shared-object" * 8}


@contextlib.contextmanager
def enospc_cache_writes():
    """Make every artifact-cache write die with ENOSPC for the
    duration — the filling-disk fault.  Uses the cache's put seam, so
    the fault lands after the entry's bytes are written but before
    they are durable: exactly where a real full disk tears a write."""
    from ..parallel import cache as cache_mod

    def _fault():
        raise OSError(errno.ENOSPC, os.strerror(errno.ENOSPC))

    previous = cache_mod.set_put_fault(_fault)
    try:
        yield
    finally:
        cache_mod.set_put_fault(previous)


def corrupt_journal_tail(path, mode="truncate"):
    """Damage the tail of a run journal (torn final record)."""
    size = os.path.getsize(path)
    if mode == "truncate":
        os.truncate(path, max(0, size - 3))
        return f"tore 3 byte(s) off the tail of {path}"
    if mode == "bitflip":
        offset = max(0, size - 2)
        with open(path, "r+b") as f:
            f.seek(offset)
            byte = f.read(1)
            f.seek(offset)
            f.write(bytes([byte[0] ^ 0x40]))
        return f"flipped a bit of tail byte {offset} in {path}"
    raise ValueError(f"unknown corruption mode {mode!r}")


# -- the standard campaign ---------------------------------------------------


def _result_key(result):
    return (result.snapshot_cycle, result.cycles, result.mismatches,
            result.power.total_w,
            tuple(sorted(result.power.by_group.items())))


def run_campaign(engine, snapshots, workers=2, timeout=10.0,
                 backoff_base=0.05):
    """Run the standard fault battery; returns ``{fault: verdict}``.

    Every verdict must be ``"recovered"`` (the run completed with
    results identical to a clean run and the incident on the health
    report) or ``"detected"`` (the run refused to produce a number).
    Anything else — a silent wrong answer, a hang — shows up as
    ``"missed"`` and is a robustness bug.
    """
    from .supervisor import replay_supervised
    from .journal import RunJournal, read_journal, TYPE_META
    from ..core.replay import ReplayError
    from ..scan.snapshot import SnapshotError

    snapshots = list(snapshots)
    baseline = [_result_key(r)
                for r in engine.replay_all(snapshots, workers=1)]
    verdicts = {}

    def supervised(snaps, plan=None):
        return replay_supervised(
            engine.flow, snaps, workers=workers,
            port_names=engine._port_names, grouping=engine.grouping,
            freq_hz=engine.freq_hz, strict=True, timeout=timeout,
            backoff_base=backoff_base, fault_plan=plan,
            serial_engine=engine)

    def expect_recovery(name, plan):
        try:
            results, health = supervised(snapshots, plan)
        except Exception:
            verdicts[name] = "missed"
            return
        ok = ([_result_key(r) for r in results] == baseline
              and not health.healthy)
        verdicts[name] = "recovered" if ok else "missed"

    expect_recovery("worker-kill",
                    FaultPlan([FaultSpec("kill", index=0)]))
    expect_recovery("worker-stall",
                    FaultPlan([FaultSpec("stall", index=1,
                                         seconds=timeout * 10)]))
    expect_recovery("worker-error",
                    FaultPlan([FaultSpec("error", index=0)]))

    def expect_detection(name, snaps, exc_types):
        try:
            supervised(snaps)
        except exc_types:
            verdicts[name] = "detected"
        except Exception:
            verdicts[name] = "missed"
        else:
            verdicts[name] = "missed"

    flipped = copy.deepcopy(snapshots)
    flip_snapshot_bit(flipped[0], where="state")
    expect_detection("snapshot-bitflip", flipped, SnapshotError)

    unsealed = copy.deepcopy(snapshots)
    unsealed[0].checksum = None
    flip_snapshot_bit(unsealed[0], where="trace")
    expect_detection("trace-bitflip", unsealed, ReplayError)

    # Cache corruption: a damaged entry must be dropped and rebuilt.
    from ..parallel.cache import ArtifactCache
    with tempfile.TemporaryDirectory() as tmp:
        cache = ArtifactCache(tmp)
        key = "ab" * 20
        cache.put("campaign", key, {"x": 1})
        corrupt_cache_entry(cache, "campaign", key, mode="bitflip")
        import warnings as _warnings
        with _warnings.catch_warnings():
            _warnings.simplefilter("ignore")
            dropped = cache.get("campaign", key) is None
        rebuilt = (cache.put("campaign", key, {"x": 1}) is not None
                   and cache.get("campaign", key) == {"x": 1})
        verdicts["cache-corruption"] = (
            "recovered" if dropped and rebuilt else "missed")

        # Journal tail corruption: torn record truncated, not fatal.
        jpath = os.path.join(tmp, "run.journal")
        with RunJournal(jpath) as journal:
            journal.append(TYPE_META, {"campaign": True})
            journal.append(TYPE_META, {"record": 2})
        corrupt_journal_tail(jpath, mode="bitflip")
        with _warnings.catch_warnings():
            _warnings.simplefilter("ignore")
            records = read_journal(jpath)
        verdicts["journal-corruption"] = (
            "recovered" if len(records) == 1
            and records[0] == (TYPE_META, {"campaign": True})
            else "missed")

    return verdicts


# -- the service-level campaign ----------------------------------------------


def run_service_campaign(design="rocket_mini", workload="towers", *,
                         sample_size=4, replay_length=32, seed=3,
                         timeout=600.0, include_restart=True,
                         state_root=None):
    """Chaos campaign against the job service; returns ``{fault:
    verdict}``.

    The acceptance bar, executable: under every service-level fault —
    a client that vanishes mid-job, a poisoned compiled kernel, a
    worker SIGKILL storm, a disk that fills mid-write, a daemon killed
    and restarted mid-queue — every job either completes with results
    **bit-identical** to a clean serial run (digest equality) or fails
    with a typed error.  Never a hang (every wait is bounded), never a
    wedged queue, never a silently wrong number.  The kill-storm leg
    additionally asserts the backend demotion ladder walked all the
    way down (``c -> compiled -> interp``) and was reported in job
    status.  ``include_restart=False`` skips the subprocess
    daemon-kill leg (for hosts where spawning a second interpreter is
    unwelcome).
    """
    from ..core.flow import run_strober, clear_caches
    from ..parallel.cache import get_cache
    from ..service import (
        ServiceHarness, ServiceClient, compiled_kernel_key,
        result_digest,
    )

    spec = {"design": design, "workload": workload,
            "sample_size": sample_size, "replay_length": replay_length,
            "seed": seed}
    root = state_root or tempfile.mkdtemp(prefix="repro-service-chaos-")
    owns_root = state_root is None
    verdicts = {}

    # The truth every faulted job is measured against: one clean,
    # serial, in-process run of the same spec.
    clean = run_strober(design, workload, sample_size=sample_size,
                        replay_length=replay_length, seed=seed,
                        workers=1)
    clean_digest = result_digest(clean.replays)

    def good(job):
        return job["state"] == "done" and job["digest"] == clean_digest

    def harness(name, **kwargs):
        return ServiceHarness(state_dir=os.path.join(root, name),
                              stop_timeout=timeout, **kwargs)

    def attempt(name, fn):
        try:
            verdicts[name] = fn()
        except Exception:
            verdicts[name] = "missed"

    def client_disconnect():
        # The submitting client drops dead mid-job; the job is the
        # daemon's (journaled before the ack), not the connection's.
        with harness("disconnect") as h:
            client = h.client(timeout=timeout).connect()
            job_id = client.submit(**spec)
            client.disconnect_abruptly()
            with h.client(timeout=timeout + 60) as fresh:
                job = fresh.wait(job_id, timeout_s=timeout)
        return "recovered" if good(job) else "missed"

    def poisoned_glso():
        # A well-framed glso entry whose .so cannot load: the codegen
        # layer must catch the load failure and rebuild, not crash.
        key = compiled_kernel_key(design)
        poison_cache_entry(get_cache(), "glso", key,
                           poisoned_glso_payload())
        with harness("poisoned") as h:
            with h.client(timeout=timeout + 60) as client:
                job_id = client.submit(gl_backend="c", **spec)
                job = client.wait(job_id, timeout_s=timeout)
        return "recovered" if good(job) else "missed"

    def kill_storm():
        # Two crash-storm jobs walk the breaker down the full ladder;
        # the third runs clean on the floor.  All three must still be
        # bit-identical — backends and the serial fallback agree by
        # construction.
        storm = [{"kind": "kill", "times": 5}]
        with harness("storm", breaker_threshold=2) as h:
            with h.client(timeout=timeout + 60) as client:
                jobs = []
                for faults in (storm, storm, None):
                    job_id = client.submit(
                        gl_backend="c", workers=2,
                        faults=copy.deepcopy(faults) or [], **spec)
                    jobs.append(client.wait(job_id, timeout_s=timeout))
                breakers = client.status()["breakers"]
        floor = breakers.get(design, {}).get("floor")
        demoted = [d["to"] for job in jobs for d in job["demotions"]]
        ladder_ok = (floor == "interp" and "compiled" in demoted
                     and "interp" in demoted
                     and jobs[2]["backends"] == ["interp"]
                     and jobs[0]["crashes"] >= 2)
        return ("recovered" if ladder_ok and all(map(good, jobs))
                else "missed")

    def enospc():
        # Disk fills mid-write on a stone-cold cache: every artifact
        # write dies, the job completes anyway, and no partial entry
        # is left live.
        fresh_cache = os.path.join(root, "enospc-cache")
        previous = os.environ.get("REPRO_CACHE_DIR")
        os.environ["REPRO_CACHE_DIR"] = fresh_cache
        clear_caches()
        try:
            with enospc_cache_writes():
                with harness("enospc") as h:
                    with h.client(timeout=timeout + 60) as client:
                        job_id = client.submit(**spec)
                        job = client.wait(job_id, timeout_s=timeout)
        finally:
            if previous is None:
                os.environ.pop("REPRO_CACHE_DIR", None)
            else:
                os.environ["REPRO_CACHE_DIR"] = previous
            clear_caches()
        leftovers = [name for _, _, files in os.walk(fresh_cache)
                     for name in files if name.endswith(".pkl")]
        return ("recovered" if good(job) and not leftovers
                else "missed")

    def daemon_restart():
        # SIGKILL the daemon mid-queue; a restart on the same state
        # dir must finish the queue without recomputing the job that
        # already finished (its run journal stays byte-for-byte).
        import json
        import subprocess
        import sys

        import repro
        state_dir = os.path.join(root, "restart")
        sock = os.path.join(root, "restart.sock")
        src_dir = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src_dir, env.get("PYTHONPATH")) if p)
        command = [sys.executable, "-m", "repro.service",
                   "--state-dir", state_dir, "--unix-socket", sock]

        def spawn():
            proc = subprocess.Popen(command, env=env,
                                    stdout=subprocess.PIPE,
                                    stderr=subprocess.DEVNULL,
                                    text=True)
            if not json.loads(proc.stdout.readline() or "null"):
                raise RuntimeError("daemon failed to start")
            return proc

        proc = spawn()
        jobs = []
        try:
            with ServiceClient(sock, timeout=timeout + 60) as client:
                ids = [client.submit(**spec) for _ in range(3)]
                first = client.wait(ids[0], timeout_s=timeout)
            proc.kill()                      # no drain, no goodbye
            proc.wait(timeout=60)
            first_journal = os.path.join(state_dir, "runs",
                                         f"{ids[0]}.journal")
            size_before = os.path.getsize(first_journal)
            proc = spawn()
            with ServiceClient(sock, timeout=timeout + 60) as client:
                jobs = [client.wait(job_id, timeout_s=timeout)
                        for job_id in ids]
                client.shutdown()
            proc.wait(timeout=120)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=60)
        resumed_ok = (good(first)
                      and os.path.getsize(first_journal) == size_before
                      and all(job["resumed"] for job in jobs))
        return ("recovered" if resumed_ok and all(map(good, jobs))
                else "missed")

    try:
        attempt("client-disconnect", client_disconnect)
        attempt("poisoned-glso", poisoned_glso)
        attempt("worker-kill-storm", kill_storm)
        attempt("enospc", enospc)
        if include_restart:
            attempt("daemon-restart", daemon_restart)
    finally:
        if owns_root:
            shutil.rmtree(root, ignore_errors=True)
    return verdicts
