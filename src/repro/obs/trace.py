"""Span tracer: nested, cross-process, near-free when disabled.

One :class:`Tracer` collects the run's spans (named intervals with
category, wall/CPU time, pid/tid, parent links, and free-form
attributes), instant events (supervisor incidents, cache corruptions),
and counter samples (the live sampling-error telemetry).  A process
holds exactly one *current* tracer — :func:`get_tracer` — which
defaults to the module-level :class:`NullTracer`, whose every
operation is a constant-time no-op, so instrumentation left in hot
paths costs a dict lookup and an empty context manager when tracing
is off.

Cross-process model: replay worker processes install their own tracer
and ship drained spans back over the supervisor's per-worker framed
pipes (see :mod:`repro.robust.supervisor`); :meth:`Tracer.ingest`
merges them into the parent trace.  Spans carry the recording
process's real pid/tid, and timestamps are wall-epoch seconds
(``time.time()``), which every process on a host shares — so merged
spans land on a common timeline without clock negotiation.
"""

from __future__ import annotations

import os
import threading
import time


class SpanRecord:
    """One closed span.  Plain attributes, picklable, no behavior."""

    __slots__ = ("name", "cat", "ts", "dur", "cpu", "pid", "tid",
                 "span_id", "parent_id", "args")

    def __init__(self, name, cat, ts, dur, cpu, pid, tid, span_id,
                 parent_id, args):
        self.name = name
        self.cat = cat
        self.ts = ts            # wall-epoch seconds at span entry
        self.dur = dur          # wall seconds
        self.cpu = cpu          # thread CPU seconds
        self.pid = pid
        self.tid = tid
        self.span_id = span_id
        self.parent_id = parent_id
        self.args = args

    def as_dict(self):
        return {"name": self.name, "cat": self.cat, "ts": self.ts,
                "dur": self.dur, "cpu": self.cpu, "pid": self.pid,
                "tid": self.tid, "span_id": self.span_id,
                "parent_id": self.parent_id, "args": dict(self.args)}

    def __repr__(self):
        return (f"SpanRecord({self.name!r}, ts={self.ts:.6f}, "
                f"dur={self.dur * 1e3:.3f}ms, pid={self.pid})")


class _Span:
    """Context manager for one open span on one thread."""

    __slots__ = ("_tracer", "name", "cat", "args", "span_id",
                 "parent_id", "ts", "_t0", "_c0", "dur", "cpu")

    def __init__(self, tracer, name, cat, args):
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args
        self.span_id = None
        self.parent_id = None
        self.ts = 0.0
        self.dur = 0.0
        self.cpu = 0.0

    def set(self, **attrs):
        """Attach attributes discovered mid-span (cycles, lanes, …)."""
        self.args.update(attrs)
        return self

    def __enter__(self):
        tracer = self._tracer
        stack = tracer._stack()
        self.parent_id = stack[-1] if stack else None
        self.span_id = tracer._next_id()
        stack.append(self.span_id)
        self.ts = time.time()
        self._t0 = time.perf_counter()
        self._c0 = time.thread_time()
        return self

    def __exit__(self, exc_type, exc, tb):
        self.dur = time.perf_counter() - self._t0
        self.cpu = time.thread_time() - self._c0
        tracer = self._tracer
        stack = tracer._stack()
        if stack and stack[-1] == self.span_id:
            stack.pop()
        if exc_type is not None:
            self.args.setdefault("error", exc_type.__name__)
        tracer._record(SpanRecord(
            self.name, self.cat, self.ts, self.dur, self.cpu,
            os.getpid(), threading.get_ident(), self.span_id,
            self.parent_id, self.args))
        return False


class _NullSpan:
    """Shared do-nothing span; one instance serves every no-op site."""

    __slots__ = ()
    name = cat = ""
    ts = dur = cpu = 0.0
    span_id = parent_id = None
    args = {}

    def set(self, **attrs):
        return self

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every call is constant-time and allocates
    nothing.  ``enabled`` is False so call sites can skip attribute
    computation entirely (``if tracer.enabled: …``)."""

    enabled = False
    distributed = False
    correlation = {}

    def span(self, name, cat="", **args):
        return _NULL_SPAN

    def instant(self, name, cat="", **args):
        pass

    def counter(self, name, value, cat="telemetry"):
        pass

    def set_correlation(self, **attrs):
        pass

    def ingest(self, payload):
        pass

    def drain(self):
        return None


class Tracer(NullTracer):
    """Collecting tracer.

    ``distributed=True`` marks the trace as wanting worker-side
    capture: the supervisor checks this flag on the current tracer and
    tells replay workers to trace themselves and ship spans home.
    Thread-safe: spans close under a lock; per-thread open-span stacks
    live in a ``threading.local``.

    ``on_span`` is an optional callback fired (outside the lock) with
    each :class:`SpanRecord` as it closes — locally recorded and
    ingested worker spans alike.  This is the live span *stream* the
    job service's ``/status`` endpoint subscribes to; a callback that
    raises is dropped silently, because observability must never fail
    the observed work.

    ``on_event`` is the same live stream for *instant* events: fired
    (outside the lock) with each event dict as :meth:`instant` records
    it, ingested worker events included.  The job service subscribes
    to it per job so the adaptive sampling controller's
    ``controller.*`` decisions (dispatch, progress, cancel, stop)
    surface in job status while the run is still executing.

    ``correlation`` is a small dict of identity attributes — the job
    service's ``job_id``, the flow's ``run_key`` — stamped onto every
    span and instant this tracer records (``setdefault``: an explicit
    per-span attribute wins).  Replay worker processes receive the
    parent's correlation in their spawn payload and stamp their own
    spans with it, so one job's spans are joinable across pids in an
    exported trace without walking parent links.
    """

    enabled = True

    def __init__(self, distributed=False, on_span=None, on_event=None,
                 correlation=None):
        self.distributed = bool(distributed)
        self.on_span = on_span
        self.on_event = on_event
        self.correlation = dict(correlation or {})
        self.spans = []           # closed SpanRecords, completion order
        self.events = []          # instant events (dicts)
        self.counters = []        # counter samples (dicts)
        self.created = time.time()
        self._lock = threading.Lock()
        self._local = threading.local()
        self._ids = iter(range(1, 1 << 62))
        # pid namespace keeps ingested worker span ids from colliding
        # with locally issued ones
        self._pid = os.getpid()

    # -- internals used by _Span ------------------------------------

    def _stack(self):
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _next_id(self):
        with self._lock:
            return f"{self._pid}.{next(self._ids)}"

    def _record(self, record):
        if self.correlation:
            for key, value in self.correlation.items():
                record.args.setdefault(key, value)
        with self._lock:
            self.spans.append(record)
        self._notify(record)

    def set_correlation(self, **attrs):
        """Add identity attributes stamped on every span from now on
        (``None`` values are ignored so call sites stay branch-free)."""
        self.correlation.update(
            {k: v for k, v in attrs.items() if v is not None})

    def _notify(self, record):
        if self.on_span is None:
            return
        try:
            self.on_span(record)
        except Exception:
            pass        # a broken subscriber must not fail the work

    # -- recording API ----------------------------------------------

    def span(self, name, cat="", **args):
        return _Span(self, name, cat, args)

    def instant(self, name, cat="", **args):
        """A zero-duration marker (incident, corruption, spawn…)."""
        if self.correlation:
            for key, value in self.correlation.items():
                args.setdefault(key, value)
        event = {"name": name, "cat": cat,
                 "ts": time.time(), "pid": os.getpid(),
                 "tid": threading.get_ident(),
                 "args": args}
        with self._lock:
            self.events.append(event)
        self._notify_event(event)

    def _notify_event(self, event):
        if self.on_event is None:
            return
        try:
            self.on_event(event)
        except Exception:
            pass        # a broken subscriber must not fail the work

    def counter(self, name, value, cat="telemetry"):
        """One sample of a time-varying quantity (Chrome counter track)."""
        with self._lock:
            self.counters.append({"name": name, "cat": cat,
                                  "ts": time.time(),
                                  "pid": os.getpid(),
                                  "value": float(value)})

    # -- cross-process merge ----------------------------------------

    def drain(self):
        """Detach and return everything recorded so far (picklable).

        Worker processes call this after each task and ship the payload
        to the supervisor, which feeds it to :meth:`ingest` on the
        parent tracer.  Open spans are untouched — they land in the
        next drain once closed.
        """
        with self._lock:
            payload = {"spans": [s.as_dict() for s in self.spans],
                       "events": self.events,
                       "counters": self.counters}
            self.spans = []
            self.events = []
            self.counters = []
        return payload

    def ingest(self, payload):
        """Merge a :meth:`drain` payload from another process."""
        if not payload:
            return
        ingested = [SpanRecord(
            d["name"], d["cat"], d["ts"], d["dur"], d["cpu"],
            d["pid"], d["tid"], d["span_id"], d["parent_id"],
            d["args"]) for d in payload.get("spans", ())]
        events = list(payload.get("events", ()))
        with self._lock:
            self.spans.extend(ingested)
            self.events.extend(events)
            self.counters.extend(payload.get("counters", ()))
        for record in ingested:
            self._notify(record)
        for event in events:
            self._notify_event(event)

    # -- queries ----------------------------------------------------

    def find(self, name=None, cat=None):
        """Closed spans filtered by exact name and/or category."""
        return [s for s in self.spans
                if (name is None or s.name == name)
                and (cat is None or s.cat == cat)]


_TRACER = NullTracer()


def get_tracer():
    """The process's current tracer (a :class:`NullTracer` by default)."""
    return _TRACER


def set_tracer(tracer):
    """Install ``tracer`` as current; returns the previous one."""
    global _TRACER
    previous = _TRACER
    _TRACER = tracer if tracer is not None else NullTracer()
    return previous


def tracing_enabled():
    return _TRACER.enabled
