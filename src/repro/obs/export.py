"""Trace/metric exporters: Chrome trace-event JSON and metrics JSONL.

The Chrome export uses the object form of the trace-event format —
``{"traceEvents": [...], ...}`` — which ``chrome://tracing`` and
Perfetto both load directly.  Spans become complete ("X") events,
instants become "i", counter samples become "C", and process/thread
labels ride along as "M" metadata.  Two repro-specific top-level keys
(ignored by the viewers) make the file self-contained for
``python -m repro.obs.report``: ``reproMeta`` (run parameters) and
``reproMetrics`` (the registry snapshot).

Timestamps: the trace-event format wants microseconds.  Spans record
wall-epoch seconds, so every event is exported relative to the
earliest timestamp in the trace; ``reproMeta.epoch`` keeps the
absolute origin.
"""

from __future__ import annotations

import json


def _clean(args):
    """Attribute dicts must survive json.dumps; stringify stragglers."""
    out = {}
    for key, value in args.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            out[key] = value
        else:
            out[key] = repr(value)
    return out


def chrome_trace_events(tracer, epoch=None):
    """The tracer's contents as a list of trace-event dicts."""
    spans = list(tracer.spans)
    events = list(tracer.events)
    counters = list(tracer.counters)
    if epoch is None:
        stamps = ([s.ts for s in spans] + [e["ts"] for e in events]
                  + [c["ts"] for c in counters])
        epoch = min(stamps) if stamps else 0.0

    def us(ts):
        return (ts - epoch) * 1e6

    out = []
    seen_procs = {}
    for span in spans:
        out.append({"ph": "X", "name": span.name,
                    "cat": span.cat or "span",
                    "ts": us(span.ts), "dur": span.dur * 1e6,
                    "pid": span.pid, "tid": span.tid,
                    "args": _clean(dict(span.args,
                                        cpu_ms=span.cpu * 1e3,
                                        span_id=span.span_id,
                                        parent_id=span.parent_id))})
        seen_procs.setdefault(span.pid, span.name)
    for ev in events:
        out.append({"ph": "i", "name": ev["name"],
                    "cat": ev["cat"] or "event", "s": "p",
                    "ts": us(ev["ts"]), "pid": ev["pid"],
                    "tid": ev["tid"], "args": _clean(ev["args"])})
        seen_procs.setdefault(ev["pid"], ev["name"])
    for sample in counters:
        out.append({"ph": "C", "name": sample["name"],
                    "cat": sample["cat"] or "counter",
                    "ts": us(sample["ts"]), "pid": sample["pid"],
                    "tid": 0,
                    "args": {"value": sample["value"]}})
    # Label processes so Perfetto shows "parent"/"worker" instead of
    # bare pids; the parent is the pid that recorded the root span
    # (smallest first-seen ts wins the name "strober").
    root_pid = min(seen_procs, key=lambda pid: next(
        (s.ts for s in spans if s.pid == pid), float("inf"))) \
        if seen_procs else None
    for pid in seen_procs:
        label = "strober" if pid == root_pid else f"replay-worker-{pid}"
        out.append({"ph": "M", "name": "process_name", "pid": pid,
                    "tid": 0, "args": {"name": label}})
    return out, epoch


def export_chrome_trace(path, tracer, registry=None, meta=None):
    """Write one self-contained Chrome-trace JSON file; returns path."""
    events, epoch = chrome_trace_events(tracer)
    doc = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "reproMeta": dict(meta or {}, epoch=epoch),
        "reproMetrics": registry.snapshot() if registry is not None
        else {},
    }
    with open(path, "w") as f:
        json.dump(doc, f, indent=1)
        f.write("\n")
    return path


def load_trace(path):
    """Load a trace written by :func:`export_chrome_trace`."""
    with open(path) as f:
        doc = json.load(f)
    if "traceEvents" not in doc:
        raise ValueError(f"{path} is not a Chrome trace (object form)")
    return doc


def export_metrics_jsonl(path, registry, prefix=""):
    """One JSON object per line per instrument; returns path."""
    snapshot = registry.snapshot(prefix)
    with open(path, "w") as f:
        for name in sorted(snapshot):
            f.write(json.dumps(dict(snapshot[name], name=name),
                               sort_keys=True))
            f.write("\n")
    return path
