"""Human-readable run report from a Chrome-trace JSON file.

``python -m repro.obs.report <trace.json>`` prints, from one
self-contained trace written by ``run_strober(trace=path)``:

* the phase-time tree (wall-clock per phase, nested spans aggregated
  by name, percentage of the run) and how much of the run's wall-clock
  the phases account for;
* per-worker utilization (busy replaying vs the replay phase's span);
* artifact-cache effectiveness (hits/misses/corruption/schedule time
  saved) from the embedded metrics snapshot;
* the live sampling-error telemetry — the running mean power and
  confidence-interval half-width recorded as each replay completed —
  i.e. how fast the estimate converged.

The same machinery is importable (:func:`render_report`) so tests and
notebooks can render a report without the CLI.
"""

from __future__ import annotations

import argparse
import sys

from .export import load_trace


class _Node:
    __slots__ = ("name", "count", "dur", "cpu", "children")

    def __init__(self, name):
        self.name = name
        self.count = 0
        self.dur = 0.0
        self.cpu = 0.0
        self.children = {}


def _span_events(doc):
    return [ev for ev in doc["traceEvents"] if ev.get("ph") == "X"]


def build_phase_tree(doc, pid=None):
    """Aggregate one process's spans into a name-keyed nesting tree.

    Spans are nested by interval containment per (pid, tid) — the
    exporter guarantees a child's [ts, ts+dur] lies inside its
    parent's — and siblings with the same name merge into one node
    with a count, so 30 ``replay.snapshot`` spans read as one line.
    """
    spans = _span_events(doc)
    if pid is None:
        pid = root_pid(doc)
    root = _Node("<trace>")
    by_tid = {}
    for ev in spans:
        if ev["pid"] == pid:
            by_tid.setdefault(ev["tid"], []).append(ev)
    for events in by_tid.values():
        events.sort(key=lambda ev: (ev["ts"], -ev["dur"]))
        stack = [(root, float("-inf"), float("inf"))]
        for ev in events:
            end = ev["ts"] + ev["dur"]
            while stack[-1][2] < end - 1e-3:   # 1 µs slack
                stack.pop()
            parent = stack[-1][0]
            node = parent.children.get(ev["name"])
            if node is None:
                node = parent.children[ev["name"]] = _Node(ev["name"])
            node.count += 1
            node.dur += ev["dur"]
            node.cpu += ev["args"].get("cpu_ms", 0.0) * 1e3
            stack.append((node, ev["ts"], end))
    return root


def root_pid(doc):
    """The pid that recorded the earliest span (the parent process)."""
    spans = _span_events(doc)
    if not spans:
        raise ValueError("trace has no spans")
    return min(spans, key=lambda ev: ev["ts"])["pid"]


def root_span(doc):
    """The longest span of the root pid (``strober.run``)."""
    spans = [ev for ev in _span_events(doc) if ev["pid"] == root_pid(doc)]
    return max(spans, key=lambda ev: ev["dur"])


def phase_coverage(doc):
    """Fraction of the root span's wall-clock its phase spans cover."""
    top = root_span(doc)
    phases = [ev for ev in _span_events(doc)
              if ev.get("cat") == "phase" and ev["pid"] == top["pid"]]
    if top["dur"] <= 0:
        return 0.0
    return sum(ev["dur"] for ev in phases) / top["dur"]


def _render_tree(node, total_us, lines, depth=0, max_depth=6):
    for child in sorted(node.children.values(), key=lambda n: -n.dur):
        share = child.dur / total_us * 100 if total_us else 0.0
        mult = f" x{child.count}" if child.count > 1 else ""
        lines.append(f"  {'  ' * depth}{child.name:<{40 - 2 * depth}s}"
                     f"{child.dur / 1e3:10.1f} ms {share:5.1f}%{mult}")
        if depth + 1 < max_depth:
            _render_tree(child, total_us, lines, depth + 1, max_depth)


def worker_rows(doc):
    """[(pid, tasks, busy_ms, util_fraction)] for every worker pid."""
    spans = _span_events(doc)
    parent = root_pid(doc)
    replay_phase = [ev for ev in spans if ev["pid"] == parent
                    and ev["name"] == "phase.replay"]
    window = sum(ev["dur"] for ev in replay_phase)
    rows = []
    for pid in sorted({ev["pid"] for ev in spans} - {parent}):
        tasks = [ev for ev in spans
                 if ev["pid"] == pid and ev["name"] == "worker.task"]
        busy = sum(ev["dur"] for ev in tasks)
        util = busy / window if window else 0.0
        rows.append((pid, len(tasks), busy / 1e3, util))
    return rows


def sampling_series(doc):
    """Paired (n, mean_mw, rel_error_pct) telemetry samples, in order.

    The telemetry emits all three counter tracks together per completed
    replay (starting at n=2, the first point with a defined interval),
    so the tracks zip one-to-one.
    """
    tracks = {"sampling.n": [], "sampling.mean_mw": [],
              "sampling.rel_error_pct": []}
    for ev in doc["traceEvents"]:
        if ev.get("ph") == "C" and ev["name"] in tracks:
            tracks[ev["name"]].append(ev["args"]["value"])
    return [(int(n), mean, err)
            for n, mean, err in zip(tracks["sampling.n"],
                                    tracks["sampling.mean_mw"],
                                    tracks["sampling.rel_error_pct"])]


def controller_events(doc):
    """Adaptive-sampling-controller decisions, in trace order.

    The controller emits one instant per decision — ``controller.
    dispatch`` (the plan), ``controller.progress`` (per observed
    replay), ``controller.cancel`` (the in-flight abandon), and
    ``controller.stop`` (the final verdict).  Instants export as
    ``ph == "i"`` events; fixed-sample runs emit none.
    """
    return [ev for ev in doc["traceEvents"]
            if ev.get("ph") == "i"
            and str(ev.get("name", "")).startswith("controller.")]


def _metric(doc, name, default=0.0):
    inst = doc.get("reproMetrics", {}).get(name)
    return default if inst is None else inst.get("value", default)


def render_report(doc):
    """The full report as one string."""
    lines = []
    meta = doc.get("reproMeta", {})
    top = root_span(doc)
    run_ms = top["dur"] / 1e3
    head = " / ".join(str(meta[k]) for k in ("design", "workload")
                      if k in meta) or top["name"]
    lines.append(f"== strober run report: {head} ==")
    parts = [f"wall {run_ms / 1e3:.2f} s"]
    for key in ("workers", "batch_lanes", "sample_size"):
        if key in meta:
            parts.append(f"{key}={meta[key]}")
    # Correlation ids: the export meta carries the flow's run_key; a
    # service-produced trace additionally stamps job_id on every span.
    for key in ("run_key", "job_id"):
        value = meta.get(key, top.get("args", {}).get(key))
        if value is not None:
            parts.append(f"{key}={value}")
    lines.append("   " + "  ".join(parts))

    lines.append("")
    lines.append(f"-- phase-time tree "
                 f"({phase_coverage(doc) * 100:.1f}% of wall-clock "
                 f"accounted by phases) --")
    tree = build_phase_tree(doc)
    _render_tree(tree, top["dur"], lines)

    rows = worker_rows(doc)
    lines.append("")
    if rows:
        lines.append("-- worker utilization (replay phase) --")
        for pid, tasks, busy_ms, util in rows:
            bar = "#" * int(round(util * 20))
            lines.append(f"  pid {pid:<8d} {tasks:4d} task(s) "
                         f"{busy_ms:10.1f} ms busy  "
                         f"{util * 100:5.1f}% [{bar:<20s}]")
    else:
        lines.append("-- worker utilization: serial run "
                     "(no worker processes) --")

    lines.append("")
    lines.append("-- artifact cache --")
    hits = _metric(doc, "cache.hits")
    misses = _metric(doc, "cache.misses")
    total = hits + misses
    rate = hits / total * 100 if total else 0.0
    lines.append(f"  hits {hits:.0f} / misses {misses:.0f} "
                 f"({rate:.0f}% hit rate)   corrupt dropped "
                 f"{_metric(doc, 'cache.corrupt_dropped'):.0f}   "
                 f"writes skipped "
                 f"{_metric(doc, 'cache.put_skipped'):.0f}")
    saved = _metric(doc, "cache.sched_seconds_saved")
    if saved:
        lines.append(f"  levelization time saved by cached "
                     f"schedules: {saved * 1e3:.1f} ms")

    series = sampling_series(doc)
    lines.append("")
    if series:
        lines.append("-- sampling-error telemetry "
                     "(running estimate as replays completed) --")
        lines.append(f"  {'n':>4s}  {'mean power':>12s}  "
                     f"{'rel. error':>10s}")
        stride = max(1, len(series) // 10)
        shown = series[::stride]
        if shown[-1] != series[-1]:
            shown.append(series[-1])
        for n, mean, err in shown:
            lines.append(f"  {n:4d}  {mean:9.2f} mW  {err:9.2f}%")
        n, mean, err = series[-1]
        lines.append(f"  final: {mean:.2f} mW with {err:.2f}% relative "
                     f"error bound over {n} replay(s)")
    else:
        lines.append("-- sampling-error telemetry: none recorded --")

    decisions = controller_events(doc)
    if decisions:
        lines.append("")
        lines.append("-- adaptive sampling controller --")
        for ev in decisions:
            args = ev.get("args", {})
            name = ev["name"].split("controller.", 1)[1]
            if name == "dispatch":
                lines.append(
                    f"  dispatch: {args.get('planned', '?')} of "
                    f"{args.get('pending', '?')} pending snapshot(s) "
                    f"planned ({args.get('strategy', '?')} order, "
                    f"target rel error "
                    f"{args.get('target_rel_error', '?')})")
            elif name == "cancel":
                lines.append(
                    f"  cancel: in-flight batches abandoned after "
                    f"n={args.get('n', '?')} ({args.get('reason', '?')})")
            elif name == "stop":
                rel = args.get("rel_error")
                rel_txt = (f"{rel * 100:.2f}%"
                           if isinstance(rel, (int, float)) else "n/a")
                lines.append(
                    f"  stop: {args.get('reason', '?')} at "
                    f"n={args.get('n', '?')} (rel error {rel_txt}, "
                    f"replayed fraction "
                    f"{args.get('fraction_replayed', 0) * 100:.0f}%, "
                    f"early_stop={args.get('early_stop')})")
        progress = [ev for ev in decisions
                    if ev["name"] == "controller.progress"]
        if progress:
            lines.append(f"  progress events: {len(progress)} "
                         f"(one per observed replay)")
    return "\n".join(lines)


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Render a human-readable report from a repro "
                    "Chrome-trace JSON file.")
    parser.add_argument("trace", help="trace JSON written by "
                                      "run_strober(trace=path)")
    args = parser.parse_args(argv)
    doc = load_trace(args.trace)
    try:
        print(render_report(doc))
    except BrokenPipeError:      # report | head is a normal use
        sys.stderr.close()       # suppress the shutdown re-raise
    return 0


if __name__ == "__main__":
    sys.exit(main())
