"""Performance-regression sentinel over the run-history store.

``python -m repro.obs.regress [--history PATH]`` ingests the
CRC-framed history JSONL (see :mod:`repro.obs.store`), groups records
into per-configuration series, computes a *rolling robust baseline*
for every numeric metric — median and MAD over the trailing window,
with a minimum-sample floor so two noisy points cannot declare a
trend — and compares each series' newest value against its own
history:

* a metric whose latest value sits more than ``--threshold`` robust
  z-scores (MAD-normalized) *and* more than ``--min-ratio`` relative
  change beyond its baseline median, in the metric's bad direction,
  is a **REGRESSION** and the process exits non-zero (CI gate);
* ``--warn-only`` downgrades regressions to warnings with exit 0 —
  the mode a repo runs in while its history is still shallow;
* everything else prints as a trend table (baseline median, latest,
  ratio, robust z), so the performance trajectory is visible on every
  CI run, not only when something breaks.

Both gates must trip together by design: the z-score alone fires on
near-zero-variance series where a 1% blip is "ten MADs", and the
ratio alone fires on noisy series where a 1.3x excursion is routine.
Median + MAD (not mean + stddev) keep one historical outlier — a
loaded CI runner, a cold cache — from inflating the baseline enough
to hide a real slowdown.

Metric direction comes from the name: duration-like metrics
(``*_seconds``, ``*_ms``, ``*ms_per*``, ``*latency*``, ``*overhead*``)
regress *upward*; throughput-like metrics (``*speedup*``, ``*per_s*``,
``*jobs_per*``, ``*rate*``, ``*hit_rate*``) regress *downward*;
anything else is reported but never gates (``--all`` gates those too,
treating higher as worse).
"""

from __future__ import annotations

import argparse
import json
import sys

from .store import HistoryStore, KIND_BENCH, KIND_RUN

DEFAULT_WINDOW = 20
DEFAULT_MIN_SAMPLES = 4
DEFAULT_THRESHOLD = 4.0
DEFAULT_MIN_RATIO = 0.25

# 1.4826 * MAD estimates the standard deviation of a normal sample
_MAD_SCALE = 1.4826

_HIGHER_IS_WORSE = ("seconds", "_ms", "ms_per", "latency", "overhead",
                    "_s_", "duration")
_LOWER_IS_WORSE = ("speedup", "per_s", "jobs_per", "rate", "ratio_x",
                   "throughput")


def metric_direction(name):
    """+1 = higher is worse, -1 = lower is worse, 0 = informational."""
    flat = name.lower()
    for token in _LOWER_IS_WORSE:
        if token in flat:
            return -1
    for token in _HIGHER_IS_WORSE:
        if token in flat:
            return +1
    return 0


def series_key(record):
    """The identity a record's metrics are comparable under.

    Runs group by (design, workload, knob tuple); benches by name.
    Knobs that change the work (workers, lanes, backend, overlap) must
    split the series — a 64-lane run is not slower than a 1-lane run,
    it is a different experiment.
    """
    if record.get("kind") == KIND_BENCH:
        return f"bench:{record.get('bench')}"
    config = record.get("config") or {}
    knobs = ",".join(f"{k}={config.get(k)}"
                     for k in sorted(config))
    return (f"run:{record.get('design')}/{record.get('workload')}"
            f"[{knobs}]")


def build_series(records):
    """{(series, metric): [values oldest..newest]} over valid rows."""
    series = {}
    for record in records:
        metrics = record.get("metrics")
        if not isinstance(metrics, dict):
            continue
        key = series_key(record)
        for name, value in metrics.items():
            if isinstance(value, bool) or not isinstance(
                    value, (int, float)):
                continue
            series.setdefault((key, name), []).append(float(value))
    return series


def _median(values):
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def robust_baseline(values):
    """(median, scaled-MAD) of a value list."""
    med = _median(values)
    mad = _median([abs(v - med) for v in values])
    return med, mad * _MAD_SCALE


def judge(values, *, window=DEFAULT_WINDOW,
          min_samples=DEFAULT_MIN_SAMPLES,
          threshold=DEFAULT_THRESHOLD, min_ratio=DEFAULT_MIN_RATIO,
          direction=+1):
    """Verdict dict for one series (oldest..newest values).

    The newest value is judged against the robust baseline of the
    ``window`` values before it.  Verdicts: ``insufficient`` (baseline
    below the min-sample floor), ``ok``, or ``regression``.
    """
    latest = values[-1]
    baseline = values[:-1][-window:]
    if len(baseline) < min_samples:
        return {"verdict": "insufficient", "latest": latest,
                "n_baseline": len(baseline), "median": None,
                "ratio": None, "z": None}
    median, sigma = robust_baseline(baseline)
    delta = (latest - median) * direction
    ratio = latest / median if median else float("inf")
    # Floor the spread at 1% of the median (or an absolute epsilon):
    # a bit-identical series has MAD 0 and would otherwise call any
    # measurable change an infinite z.
    sigma = max(sigma, abs(median) * 0.01, 1e-12)
    z = delta / sigma
    bad_ratio = ratio - 1.0 if direction > 0 else 1.0 - ratio
    regressed = (direction != 0 and z > threshold
                 and bad_ratio > min_ratio)
    return {"verdict": "regression" if regressed else "ok",
            "latest": latest, "n_baseline": len(baseline),
            "median": median, "ratio": ratio, "z": z}


def analyze(records, *, window=DEFAULT_WINDOW,
            min_samples=DEFAULT_MIN_SAMPLES,
            threshold=DEFAULT_THRESHOLD, min_ratio=DEFAULT_MIN_RATIO,
            gate_all=False, metric_filter=None):
    """[(series, metric, direction, verdict-dict)], sorted, judged."""
    rows = []
    for (key, metric), values in sorted(build_series(records).items()):
        if metric_filter and metric_filter not in metric:
            continue
        direction = metric_direction(metric)
        if direction == 0 and gate_all:
            direction = +1
        verdict = judge(values, window=window, min_samples=min_samples,
                        threshold=threshold, min_ratio=min_ratio,
                        direction=direction)
        if direction == 0 and verdict["verdict"] == "regression":
            verdict["verdict"] = "ok"      # informational metrics never gate
        rows.append((key, metric, direction, verdict))
    return rows


def render_table(rows):
    headers = ("series", "metric", "dir", "n", "baseline", "latest",
               "ratio", "z", "verdict")
    table = []
    for key, metric, direction, v in rows:
        table.append((
            key if len(key) <= 58 else key[:55] + "...",
            metric,
            {1: "^bad", -1: "vbad", 0: "info"}[direction],
            str(v["n_baseline"]),
            "-" if v["median"] is None else f"{v['median']:.4g}",
            f"{v['latest']:.4g}",
            "-" if v["ratio"] is None else f"{v['ratio']:.2f}x",
            "-" if v["z"] is None else f"{v['z']:+.1f}",
            v["verdict"].upper() if v["verdict"] == "regression"
            else v["verdict"],
        ))
    widths = [max(len(str(h)), *(len(r[i]) for r in table))
              if table else len(str(h))
              for i, h in enumerate(headers)]
    lines = ["  ".join(str(h).ljust(w)
                       for h, w in zip(headers, widths)),
             "  ".join("-" * w for w in widths)]
    lines.extend("  ".join(c.ljust(w) for c, w in zip(row, widths))
                 for row in table)
    return "\n".join(lines)


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.regress",
        description="Detect performance regressions in the repro "
                    "run-history store (median+MAD rolling baseline "
                    "per series; exits 1 on a regression).")
    parser.add_argument("--history", default=None,
                        help="history JSONL path (default: "
                             "$REPRO_OBS_HISTORY or the cache-root "
                             "history file)")
    parser.add_argument("--kind", choices=[KIND_RUN, KIND_BENCH, "all"],
                        default="all", help="record kinds to analyze")
    parser.add_argument("--metric", default=None,
                        help="only metrics whose name contains this "
                             "substring")
    parser.add_argument("--window", type=int, default=DEFAULT_WINDOW,
                        help=f"rolling baseline width (default "
                             f"{DEFAULT_WINDOW})")
    parser.add_argument("--min-samples", type=int,
                        default=DEFAULT_MIN_SAMPLES,
                        help=f"baseline points required before any "
                             f"verdict (default {DEFAULT_MIN_SAMPLES})")
    parser.add_argument("--threshold", type=float,
                        default=DEFAULT_THRESHOLD,
                        help=f"robust z-score gate (default "
                             f"{DEFAULT_THRESHOLD})")
    parser.add_argument("--min-ratio", type=float,
                        default=DEFAULT_MIN_RATIO,
                        help=f"relative-change gate (default "
                             f"{DEFAULT_MIN_RATIO} = 25%%)")
    parser.add_argument("--all", action="store_true",
                        help="gate direction-less metrics too "
                             "(treating higher as worse)")
    parser.add_argument("--warn-only", action="store_true",
                        help="report regressions but exit 0 (bootstrap "
                             "mode while the history is shallow)")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable verdicts on stdout")
    args = parser.parse_args(argv)

    store = HistoryStore(args.history)
    if not store.enabled:
        print("history store disabled (REPRO_OBS_HISTORY); "
              "nothing to analyze")
        return 0
    records = store.read()
    if args.kind != "all":
        records = [r for r in records if r.get("kind") == args.kind]
    if not records:
        print(f"history store {store.path}: no records yet")
        return 0

    rows = analyze(records, window=args.window,
                   min_samples=args.min_samples,
                   threshold=args.threshold, min_ratio=args.min_ratio,
                   gate_all=args.all, metric_filter=args.metric)
    regressions = [(k, m) for k, m, _, v in rows
                   if v["verdict"] == "regression"]
    if args.json:
        # stdout stays pure JSON; the human regression lines go to
        # stderr so `regress --json | jq` works.
        print(json.dumps(
            [{"series": k, "metric": m, "direction": d, **v}
             for k, m, d, v in rows], indent=2, sort_keys=True))
        regressions_found = [(k, m) for k, m, _, v in rows
                             if v["verdict"] == "regression"]
        for key, metric in regressions_found:
            print(f"REGRESSION: {key} :: {metric}", file=sys.stderr)
        if regressions_found and not args.warn_only:
            return 1
        return 0
    else:
        print(f"== repro perf trend: {len(records)} record(s), "
              f"{len(rows)} series-metric pair(s), window "
              f"{args.window}, gate z>{args.threshold:g} and "
              f"|ratio-1|>{args.min_ratio:g} ==")
        print(render_table(rows))
    if regressions:
        print()
        for key, metric in regressions:
            print(f"REGRESSION: {key} :: {metric}")
        if args.warn_only:
            print("(--warn-only: not failing the build)")
            return 0
        return 1
    print()
    print("no regressions detected")
    return 0


if __name__ == "__main__":
    sys.exit(main())
