"""Prometheus text-format exposition over the metrics registry.

The :class:`~repro.obs.metrics.MetricsRegistry` is always live, but
until now its contents were only reachable as a one-shot ``/status``
snapshot or a trace file's embedded dump.  This module renders the
registry — counters, gauges, and fixed-bucket histograms — in the
Prometheus text exposition format (version 0.0.4), so a long-running
daemon can be *scraped*::

    # TYPE repro_service_jobs_done_total counter
    repro_service_jobs_done_total 42
    # TYPE repro_service_job_seconds histogram
    repro_service_job_seconds_bucket{le="1"} 3
    ...
    repro_service_job_seconds_sum 17.2
    repro_service_job_seconds_count 5

Name mapping: registry names are dotted (``service.jobs_done``); the
exposition flattens them to ``repro_service_jobs_done`` (every
non-``[a-zA-Z0-9_:]`` rune becomes ``_``) and counters gain the
conventional ``_total`` suffix.  Histogram buckets are emitted
*cumulative* with the mandatory ``le="+Inf"`` terminal bucket, plus
``_sum`` and ``_count`` — the shape every Prometheus client library
produces and every scraper expects.

Labeled series (per-design breaker floors, per-worker anything) do
not live in the flat registry; callers pass them as explicit
:class:`Sample` rows and the renderer groups them under one ``# TYPE``
header per family.

:func:`validate_exposition` checks a rendered page against the text-
format grammar (line syntax, one TYPE per family, declaration before
samples, cumulative monotone buckets, ``+Inf`` present).  CI runs it
against a live daemon's scrape so a renderer regression fails the
build rather than Prometheus's parser at 3 a.m.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field

PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_OK = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")

# Sample line: name{labels} value [timestamp]
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^{}]*\})?"
    r" (?P<value>[-+]?(?:\d+\.?\d*(?:[eE][-+]?\d+)?|\.\d+(?:[eE][-+]?\d+)?"
    r"|NaN|[Ii]nf|\+Inf|-Inf))"
    r"(?: (?P<ts>-?\d+))?$")
_LABEL_PAIR_RE = re.compile(
    r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\["\\n])*"$')
_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


def sanitize(name, prefix="repro_"):
    """A dotted registry name as a legal Prometheus metric name."""
    flat = _SANITIZE.sub("_", str(name)).strip("_")
    out = f"{prefix}{flat}" if not flat.startswith(prefix) else flat
    if not _NAME_OK.match(out):
        out = "_" + out
    return out


def escape_label_value(value):
    return (str(value).replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _fmt(value):
    """A float the exposition format accepts (no exponent surprises
    for integers, full precision for the rest)."""
    value = float(value)
    if value != value:
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


@dataclass
class Sample:
    """One explicit exposition row, for series the flat registry
    cannot express (labels).  ``kind`` is the family type; samples of
    the same ``name`` must agree on it."""

    name: str
    value: float
    kind: str = "gauge"
    labels: dict = field(default_factory=dict)
    help: str = None


def registry_families(registry, prefix=""):
    """The registry's instruments as (name, kind, rows) families.

    ``rows`` are ``(suffix, labels, value)`` triples; histograms
    expand into cumulative ``_bucket``/``_sum``/``_count`` rows here so
    the renderer needs no type-specific logic.
    """
    families = []
    for name, inst in sorted(registry.snapshot(prefix).items()):
        metric = sanitize(name)
        kind = inst["kind"]
        if kind == "counter":
            families.append((metric + "_total", "counter",
                             [("", {}, inst["value"])]))
        elif kind == "gauge":
            families.append((metric, "gauge",
                             [("", {}, inst["value"])]))
        elif kind == "histogram":
            rows = []
            cumulative = 0
            for edge, count in zip(inst["boundaries"], inst["counts"]):
                cumulative += count
                rows.append(("_bucket", {"le": _fmt(edge)}, cumulative))
            rows.append(("_bucket", {"le": "+Inf"}, inst["count"]))
            rows.append(("_sum", {}, inst["total"]))
            rows.append(("_count", {}, inst["count"]))
            families.append((metric, "histogram", rows))
    return families


def render_exposition(registry=None, samples=(), prefix="",
                      help_texts=None):
    """The full scrape page as one string (ends with a newline).

    ``registry`` contributes every instrument under ``prefix``;
    ``samples`` are explicit :class:`Sample` rows (labeled series),
    grouped into families by name.  ``help_texts`` maps *rendered*
    family names to ``# HELP`` strings.
    """
    help_texts = help_texts or {}
    families = []
    if registry is not None:
        families.extend(registry_families(registry, prefix))
    by_name = {}
    order = []
    for sample in samples:
        name = sanitize(sample.name)
        if sample.kind == "counter" and not name.endswith("_total"):
            name += "_total"
        if name not in by_name:
            by_name[name] = (sample.kind, [])
            order.append(name)
        kind, rows = by_name[name]
        if kind != sample.kind:
            raise ValueError(
                f"conflicting kinds for sample family {name!r}: "
                f"{kind} vs {sample.kind}")
        rows.append(("", dict(sample.labels), sample.value))
        if sample.help and name not in help_texts:
            help_texts[name] = sample.help
    for name in order:
        kind, rows = by_name[name]
        families.append((name, kind, rows))

    lines = []
    seen = set()
    for name, kind, rows in families:
        if name in seen:
            raise ValueError(f"duplicate metric family {name!r}")
        seen.add(name)
        if name in help_texts:
            text = (str(help_texts[name]).replace("\\", r"\\")
                    .replace("\n", r"\n"))
            lines.append(f"# HELP {name} {text}")
        lines.append(f"# TYPE {name} {kind}")
        for suffix, labels, value in rows:
            label_txt = ""
            if labels:
                pairs = ",".join(
                    f'{k}="{escape_label_value(v)}"'
                    for k, v in sorted(labels.items()))
                label_txt = "{" + pairs + "}"
            lines.append(f"{name}{suffix}{label_txt} {_fmt(value)}")
    return "\n".join(lines) + "\n"


# -- process-health samples ---------------------------------------------------


def rss_bytes():
    """Current resident set size, or None where unreadable."""
    try:
        with open("/proc/self/statm") as f:
            pages = int(f.read().split()[1])
        return pages * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource
        usage = resource.getrusage(resource.RUSAGE_SELF)
        # ru_maxrss: KiB on Linux, bytes on macOS — peak, not current,
        # but a usable fallback where /proc is absent.
        scale = 1 if os.uname().sysname == "Darwin" else 1024
        return usage.ru_maxrss * scale
    except Exception:
        return None


def open_fds():
    """Open file descriptors of this process, or None."""
    for fd_dir in ("/proc/self/fd", "/dev/fd"):
        try:
            return len(os.listdir(fd_dir))
        except OSError:
            continue
    return None


def process_health_samples(prefix="process"):
    """RSS and fd-count gauges for the current process (only the ones
    this platform can answer)."""
    samples = []
    rss = rss_bytes()
    if rss is not None:
        samples.append(Sample(f"{prefix}.rss_bytes", rss,
                              help="resident set size of the process"))
    fds = open_fds()
    if fds is not None:
        samples.append(Sample(f"{prefix}.open_fds", fds,
                              help="open file descriptors"))
    return samples


# -- grammar validation -------------------------------------------------------


def validate_exposition(text):
    """Check ``text`` against the Prometheus text-format grammar.

    Returns the list of problems found (empty = valid).  Checks: line
    syntax, label syntax, TYPE values, at most one TYPE per family and
    declared before its samples, histogram completeness (``+Inf``
    bucket, monotone cumulative counts, ``_count`` == terminal
    bucket), and a terminating newline.
    """
    errors = []
    if not text.endswith("\n"):
        errors.append("exposition must end with a newline")
    typed = {}          # family -> type
    hist = {}           # family -> {"buckets": [(le, v)], "count": v}
    samples_seen = set()
    for lineno, line in enumerate(text.split("\n")[:-1], start=1):
        if line == "":
            continue
        if line.startswith("#"):
            parts = line.split(" ", 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                if parts[1:2] and parts[1] in ("HELP", "TYPE"):
                    errors.append(f"line {lineno}: malformed "
                                  f"{parts[1]} comment")
                continue     # free comments are legal
            _, keyword, name = parts[:3]
            if not _NAME_OK.match(name):
                errors.append(f"line {lineno}: bad metric name "
                              f"{name!r} in {keyword}")
                continue
            if keyword == "TYPE":
                if len(parts) != 4 or parts[3] not in _TYPES:
                    errors.append(f"line {lineno}: TYPE must be one "
                                  f"of {', '.join(_TYPES)}")
                    continue
                if name in typed:
                    errors.append(f"line {lineno}: duplicate TYPE "
                                  f"for {name}")
                if name in samples_seen:
                    errors.append(f"line {lineno}: TYPE for {name} "
                                  f"after its samples")
                typed[name] = parts[3]
            continue
        m = _SAMPLE_RE.match(line)
        if m is None:
            errors.append(f"line {lineno}: not a valid sample line: "
                          f"{line!r}")
            continue
        name = m.group("name")
        labels = {}
        raw_labels = m.group("labels")
        if raw_labels:
            body = raw_labels[1:-1].rstrip(",")
            if body:
                for pair in _split_label_pairs(body):
                    if not _LABEL_PAIR_RE.match(pair):
                        errors.append(f"line {lineno}: bad label "
                                      f"pair {pair!r}")
                        continue
                    key, value = pair.split("=", 1)
                    labels[key] = value[1:-1]
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            base = name[:-len(suffix)] if name.endswith(suffix) else None
            if base and typed.get(base) == "histogram":
                family = base
                break
        samples_seen.add(family)
        samples_seen.add(name)
        if typed.get(family) == "histogram":
            entry = hist.setdefault(family,
                                    {"buckets": [], "count": None})
            if name.endswith("_bucket"):
                le = labels.get("le")
                if le is None:
                    errors.append(f"line {lineno}: histogram bucket "
                                  f"without le label")
                else:
                    entry["buckets"].append(
                        (le, float(m.group("value"))))
            elif name.endswith("_count"):
                entry["count"] = float(m.group("value"))
    for family, entry in hist.items():
        les = [le for le, _ in entry["buckets"]]
        values = [v for _, v in entry["buckets"]]
        if "+Inf" not in les:
            errors.append(f"histogram {family}: no le=\"+Inf\" bucket")
        if values != sorted(values):
            errors.append(f"histogram {family}: bucket counts are "
                          f"not cumulative/monotone: {values}")
        if (entry["count"] is not None and values
                and values[-1] != entry["count"]):
            errors.append(f"histogram {family}: _count "
                          f"{entry['count']} != terminal bucket "
                          f"{values[-1]}")
    return errors


def _split_label_pairs(body):
    """Split ``a="x",b="y"`` respecting escaped quotes inside values."""
    pairs = []
    depth_in_value = False
    start = 0
    i = 0
    while i < len(body):
        ch = body[i]
        if ch == "\\" and depth_in_value:
            i += 2
            continue
        if ch == '"':
            depth_in_value = not depth_in_value
        elif ch == "," and not depth_in_value:
            pairs.append(body[start:i])
            start = i + 1
        i += 1
    pairs.append(body[start:])
    return [p for p in pairs if p]
