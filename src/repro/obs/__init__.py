"""repro.obs — unified tracing + metrics for the whole flow.

Zero-dependency observability layer (Strober is about *measurement you
can trust*; this is the same discipline applied to our own runs):

* :class:`Tracer` / :func:`get_tracer` — nested spans with wall/CPU
  time, pid/tid, parent links, and attributes; a :class:`NullTracer`
  no-op mode whose every call is constant-time, so instrumentation in
  the replay/cache/pass paths costs ~nothing when tracing is off;
* :class:`MetricsRegistry` / :func:`get_registry` — always-live
  counters, gauges, and fixed-bucket histograms (the artifact cache's
  ``cache_stats()`` is a view over this registry);
* exporters — Chrome trace-event JSON (open in Perfetto or
  ``chrome://tracing``), a metrics JSONL dump, and Prometheus text
  exposition (:mod:`repro.obs.prom`) for scraping long-running
  processes;
* :class:`HistoryStore` (:mod:`repro.obs.store`) — the persistent
  layer: an append-only CRC-framed JSONL accumulating one compact row
  per ``run_strober`` call and per benchmark emission, which
  ``python -m repro.obs.regress`` turns into rolling-baseline
  regression verdicts CI can gate on;
* ``python -m repro.obs.report <trace>`` — phase-time tree, worker
  utilization, cache effectiveness, and the live sampling-error
  telemetry, from one trace file.

End-to-end enablement is one argument: ``run_strober(trace=path)``
traces every layer — flow phases, each compiler pass, the FAME
simulation, the ASIC flow, per-batch gate-level replay, cache traffic,
supervisor incidents — and replay worker processes ship their spans
back over the supervisor's framed pipes so the exported trace shows
every pid on one timeline.
"""

from .trace import (
    Tracer, NullTracer, SpanRecord, get_tracer, set_tracer,
    tracing_enabled,
)
from .metrics import (
    MetricsRegistry, Counter, Gauge, Histogram, get_registry,
)
from .export import (
    export_chrome_trace, export_metrics_jsonl, chrome_trace_events,
    load_trace,
)
from .store import (
    HistoryStore, default_history_path, history_enabled,
    append_run_record, append_bench_record, run_record, bench_record,
)
from .prom import (
    Sample, render_exposition, validate_exposition,
    process_health_samples, PROM_CONTENT_TYPE,
)

__all__ = [
    "Tracer", "NullTracer", "SpanRecord", "get_tracer", "set_tracer",
    "tracing_enabled",
    "MetricsRegistry", "Counter", "Gauge", "Histogram", "get_registry",
    "export_chrome_trace", "export_metrics_jsonl",
    "chrome_trace_events", "load_trace",
    "HistoryStore", "default_history_path", "history_enabled",
    "append_run_record", "append_bench_record", "run_record",
    "bench_record",
    "Sample", "render_exposition", "validate_exposition",
    "process_health_samples", "PROM_CONTENT_TYPE",
]
