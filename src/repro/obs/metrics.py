"""Process-local metrics: counters, gauges, fixed-bucket histograms.

Unlike the tracer — which is off unless a run asks for a trace — the
registry is always live: an increment is one dict lookup and a float
add, cheap enough for every cache hit and replay batch to count
unconditionally.  That makes it the single source of truth for
quantities that used to live in ad-hoc module dicts (the artifact
cache's ``STATS``) while staying visible to the trace exporter and the
report CLI.

Worker processes snapshot-and-reset their registry after each task
(:meth:`MetricsRegistry.drain`) and ship the delta to the supervisor,
which :meth:`MetricsRegistry.merge`\\ s it into the parent registry —
counters and histogram buckets add, gauges take the newest value.
"""

from __future__ import annotations

import threading


class Counter:
    """Monotonic accumulator (floats allowed: seconds saved, bytes…)."""

    __slots__ = ("name", "value")
    kind = "counter"

    def __init__(self, name):
        self.name = name
        self.value = 0.0

    def inc(self, amount=1.0):
        self.value += amount
        return self

    def as_dict(self):
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """Last-write-wins sample of a current level."""

    __slots__ = ("name", "value")
    kind = "gauge"

    def __init__(self, name):
        self.name = name
        self.value = 0.0

    def set(self, value):
        self.value = float(value)
        return self

    def as_dict(self):
        return {"kind": self.kind, "value": self.value}


class Histogram:
    """Fixed-boundary histogram: ``boundaries`` are bucket upper edges
    (a final implicit +inf bucket catches the rest)."""

    __slots__ = ("name", "boundaries", "counts", "total", "count")
    kind = "histogram"

    def __init__(self, name, boundaries):
        self.name = name
        self.boundaries = tuple(float(b) for b in boundaries)
        if list(self.boundaries) != sorted(self.boundaries):
            raise ValueError("histogram boundaries must be sorted")
        self.counts = [0] * (len(self.boundaries) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value):
        value = float(value)
        for i, edge in enumerate(self.boundaries):
            if value <= edge:
                self.counts[i] += 1
                break
        else:
            self.counts[-1] += 1
        self.total += value
        self.count += 1
        return self

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0

    def as_dict(self):
        return {"kind": self.kind, "boundaries": list(self.boundaries),
                "counts": list(self.counts), "total": self.total,
                "count": self.count}


class MetricsRegistry:
    """Name -> instrument map with merge/drain for worker shipping."""

    def __init__(self):
        self._lock = threading.Lock()
        self._instruments = {}

    def counter(self, name):
        return self._get(name, Counter, ())

    def gauge(self, name):
        return self._get(name, Gauge, ())

    def histogram(self, name, boundaries):
        return self._get(name, Histogram, (boundaries,))

    def _get(self, name, cls, extra):
        inst = self._instruments.get(name)
        if inst is None:
            with self._lock:
                inst = self._instruments.get(name)
                if inst is None:
                    inst = self._instruments[name] = cls(name, *extra)
        if not isinstance(inst, cls):
            raise TypeError(f"metric {name!r} is a {inst.kind}, "
                            f"not a {cls.kind}")
        return inst

    def get(self, name):
        """The instrument registered under ``name``, or None."""
        return self._instruments.get(name)

    def value(self, name, default=0.0):
        inst = self._instruments.get(name)
        if inst is None:
            return default
        return inst.mean if isinstance(inst, Histogram) else inst.value

    def snapshot(self, prefix=""):
        """{name: as_dict()} for every instrument under ``prefix``."""
        with self._lock:
            return {name: inst.as_dict()
                    for name, inst in self._instruments.items()
                    if name.startswith(prefix)}

    def drain(self):
        """Snapshot everything and zero the registry (worker flushes)."""
        with self._lock:
            payload = {name: inst.as_dict()
                       for name, inst in self._instruments.items()}
            self._instruments = {}
        return payload

    def merge(self, payload, source=None):
        """Fold a :meth:`drain`/:meth:`snapshot` payload in (adds
        counters and histogram buckets; gauges take the newer value).

        ``source`` names where the payload came from (a worker pid,
        a job id) and is woven into mismatch errors — with many
        processes shipping deltas, an unattributed boundary mismatch
        is undebuggable.
        """
        if not payload:
            return
        origin = f" (merging from {source})" if source else ""
        for name, d in payload.items():
            kind = d.get("kind")
            if kind == "counter":
                self.counter(name).inc(d["value"])
            elif kind == "gauge":
                self.gauge(name).set(d["value"])
            elif kind == "histogram":
                hist = self.histogram(name, d["boundaries"])
                if list(hist.boundaries) != [float(b)
                                             for b in d["boundaries"]]:
                    raise ValueError(
                        f"histogram {name!r} boundary mismatch on "
                        f"merge{origin}: have {list(hist.boundaries)}, "
                        f"payload {list(d['boundaries'])}")
                for i, c in enumerate(d["counts"]):
                    hist.counts[i] += c
                hist.total += d["total"]
                hist.count += d["count"]
            else:
                raise ValueError(f"unknown metric kind "
                                 f"{kind!r}{origin}")

    def reset(self, prefix=""):
        """Drop every instrument whose name starts with ``prefix``."""
        with self._lock:
            self._instruments = {
                name: inst for name, inst in self._instruments.items()
                if not name.startswith(prefix)}


_REGISTRY = MetricsRegistry()


def get_registry():
    """The process-wide registry (always live, never a no-op)."""
    return _REGISTRY
