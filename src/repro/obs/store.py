"""Persistent run-history store: one compact record per run or bench.

Every observability signal the repo produced before this module was
ephemeral — spans and metrics die with the process, ``/status`` is a
one-shot snapshot, and each ``BENCH_*.json`` overwrites the last.  The
history store is the durable layer underneath them: an append-only,
CRC-framed, schema-versioned JSONL file that accumulates one row per
``run_strober`` call and one row per benchmark emission, so a
performance *trajectory* exists to query, plot, and gate on
(``python -m repro.obs.regress``).

File format — one framed record per line::

    RH1 <crc32-hex8> <compact-json>\\n

The CRC covers the JSON payload bytes, so a torn tail (a writer killed
mid-append) or a corrupted line is detected and *skipped* by readers
rather than poisoning the whole file — the append-only file is shared
by concurrent writers, so readers never truncate it (unlike the run
journal, which has exactly one writer).  Each payload carries a
``"v"`` schema version; records written by a *newer* schema are
skipped (counted, warned once), never misparsed — the same
forward-compatibility rule the journals follow.

Concurrency: every append is a single ``os.write`` on an ``O_APPEND``
descriptor (one atomic line well under ``PIPE_BUF``), additionally
serialized by an ``flock`` where the platform has one — two processes
finishing runs at the same instant interleave whole lines, never
bytes.

Location: ``$REPRO_OBS_HISTORY`` names the file (or disables the
store entirely with ``0``/``off``/an empty value); the default lives
under the artifact-cache root — ``$REPRO_CACHE_DIR`` or
``~/.cache/repro`` — in ``history/history.jsonl``, so hermetic CI
setups that already redirect the cache get a hermetic history for
free.
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import time
import warnings
import zlib

SCHEMA_VERSION = 1
MAGIC = "RH1"
_ENV_PATH = "REPRO_OBS_HISTORY"
_DISABLED = ("0", "off", "no", "none", "disable", "disabled")

KIND_RUN = "run"
KIND_BENCH = "bench"


def default_history_path():
    """Where history rows go, or None when the store is disabled."""
    env = os.environ.get(_ENV_PATH)
    if env is not None:
        if env.strip().lower() in _DISABLED or not env.strip():
            return None
        return env
    from ..parallel.cache import default_cache_dir
    return os.path.join(default_cache_dir(), "history", "history.jsonl")


def history_enabled():
    return default_history_path() is not None


_GIT_SHA = None


def git_sha():
    """Best-effort commit id of the running tree (cached; None when
    not a checkout or git is unavailable).  ``$REPRO_GIT_SHA``
    overrides — CI can stamp the exact commit without shelling out."""
    global _GIT_SHA
    if _GIT_SHA is None:
        env = os.environ.get("REPRO_GIT_SHA")
        if env:
            _GIT_SHA = env
        else:
            root = os.path.dirname(os.path.dirname(os.path.dirname(
                os.path.dirname(os.path.abspath(__file__)))))
            try:
                out = subprocess.run(
                    ["git", "rev-parse", "HEAD"], cwd=root,
                    capture_output=True, text=True, timeout=5)
                _GIT_SHA = (out.stdout.strip()
                            if out.returncode == 0 and out.stdout.strip()
                            else "")
            except (OSError, subprocess.SubprocessError):
                _GIT_SHA = ""
    return _GIT_SHA or None


def _frame(payload_bytes):
    crc = zlib.crc32(payload_bytes) & 0xFFFFFFFF
    return b"%s %08x " % (MAGIC.encode(), crc) + payload_bytes + b"\n"


def _lock(fd):
    try:
        import fcntl
        fcntl.flock(fd, fcntl.LOCK_EX)
        return True
    except (ImportError, OSError):
        return False


def _unlock(fd):
    try:
        import fcntl
        fcntl.flock(fd, fcntl.LOCK_UN)
    except (ImportError, OSError):
        pass


class HistoryStore:
    """One history file: durable appends, tolerant reads."""

    def __init__(self, path=None):
        if path is None:
            path = default_history_path()
        self.path = path

    @property
    def enabled(self):
        return self.path is not None

    # -- writing -----------------------------------------------------

    def append(self, record):
        """Durably append one record; returns the stamped dict.

        Stamps schema version, wall-clock, host, and pid onto a copy
        of ``record``.  A disabled store is a silent no-op (returns
        None) so call sites need no conditionals.
        """
        if not self.enabled:
            return None
        stamped = dict(record)
        stamped.setdefault("v", SCHEMA_VERSION)
        stamped.setdefault("ts", time.time())
        stamped.setdefault("host", socket.gethostname())
        stamped.setdefault("pid", os.getpid())
        payload = json.dumps(stamped, sort_keys=True,
                             separators=(",", ":")).encode()
        line = _frame(payload)
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        # O_APPEND + one write: whole lines interleave atomically even
        # without the advisory lock; the flock closes the (tiny) race
        # on platforms whose O_APPEND semantics are weaker (NFS).
        fd = os.open(self.path, os.O_WRONLY | os.O_APPEND | os.O_CREAT,
                     0o644)
        try:
            locked = _lock(fd)
            try:
                os.write(fd, line)
            finally:
                if locked:
                    _unlock(fd)
        finally:
            os.close(fd)
        from .metrics import get_registry
        get_registry().counter("obs.history.appends").inc()
        get_registry().counter("obs.history.bytes").inc(len(line))
        return stamped

    # -- reading -----------------------------------------------------

    def read(self, kind=None):
        """Every valid record, oldest first (list of dicts).

        Skips — counting each class in the registry — torn/corrupt
        lines (``obs.history.skipped_corrupt``; a torn *tail* is the
        expected crash artifact and additionally counted as
        ``obs.history.torn_tail``) and records stamped with a newer
        schema version (``obs.history.skipped_foreign``).  A missing
        file reads as empty.
        """
        if not self.enabled or not os.path.exists(self.path):
            return []
        from .metrics import get_registry
        registry = get_registry()
        records = []
        with open(self.path, "rb") as f:
            lines = f.read().split(b"\n")
        # A trailing newline leaves one empty element; drop it so only
        # genuinely damaged content counts as corruption.
        if lines and lines[-1] == b"":
            lines.pop()
        foreign = corrupt = 0
        for lineno, raw in enumerate(lines):
            record = self._parse_line(raw)
            if record is None:
                corrupt += 1
                registry.counter("obs.history.skipped_corrupt").inc()
                if lineno == len(lines) - 1:
                    registry.counter("obs.history.torn_tail").inc()
                continue
            if record.get("v", 0) > SCHEMA_VERSION:
                foreign += 1
                registry.counter("obs.history.skipped_foreign").inc()
                continue
            if kind is not None and record.get("kind") != kind:
                continue
            records.append(record)
        if corrupt:
            warnings.warn(
                f"history store {self.path}: skipped {corrupt} "
                f"corrupt/torn line(s); appends continue past them",
                RuntimeWarning, stacklevel=2)
        if foreign:
            warnings.warn(
                f"history store {self.path}: skipped {foreign} "
                f"record(s) written by a newer schema "
                f"(> v{SCHEMA_VERSION})", RuntimeWarning, stacklevel=2)
        return records

    @staticmethod
    def _parse_line(raw):
        """One framed line -> dict, or None when invalid."""
        parts = raw.split(b" ", 2)
        if len(parts) != 3 or parts[0] != MAGIC.encode():
            return None
        magic, crc_hex, payload = parts
        try:
            crc = int(crc_hex, 16)
        except ValueError:
            return None
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            return None
        try:
            record = json.loads(payload)
        except ValueError:
            return None
        return record if isinstance(record, dict) else None


# -- record builders ---------------------------------------------------------


def run_record(run):
    """The compact history row for one completed :class:`StroberRun`.

    Pure builder (no I/O) so tests can assert the schema without a
    store.  Every numeric that the regression sentinel gates on lands
    flat under ``"metrics"``; identity and knobs land under their own
    keys so rows group into per-configuration series.
    """
    from .metrics import get_registry
    registry = get_registry()
    timings = run.timings or {}
    config = {
        "workers": timings.get("workers"),
        "batch_lanes": timings.get("batch_lanes"),
        "gl_backend": timings.get("gl_backend"),
        "gl_overlap": timings.get("gl_overlap"),
    }
    metrics = {"wall_seconds": run.wall_seconds}
    for key in ("sim_seconds", "flow_seconds", "replay_seconds",
                "energy_seconds"):
        value = timings.get(key)
        if isinstance(value, (int, float)):
            metrics[key] = value
    # Per-phase native-kernel counters (seconds spent in each replay
    # step across the whole run) — zero rows are noise, drop them.
    glstep = {}
    for name, inst in registry.snapshot("glstep.").items():
        if inst.get("value"):
            glstep[name] = inst["value"]
    hits = registry.value("cache.hits")
    misses = registry.value("cache.misses")
    sampling = getattr(run, "sampling", None) or {}
    record = {
        "kind": KIND_RUN,
        "git_sha": git_sha(),
        "run_key": getattr(run, "run_key", None),
        "design": run.design,
        "workload": run.workload,
        "config": config,
        "metrics": metrics,
        "glstep_seconds": glstep,
        "cache": {"hits": hits, "misses": misses,
                  "hit_rate": hits / (hits + misses)
                  if hits + misses else None},
        "snapshots": len(run.replays),
        "cycles": run.result.cycles,
        "flow_cache_hit": timings.get("flow_cache_hit"),
        "sampling": {"stop_reason": sampling.get("stop_reason"),
                     "rel_error": sampling.get("rel_error"),
                     "n": sampling.get("n")} if sampling else None,
    }
    return record


def bench_record(name, payload):
    """The history row for one ``BENCH_*.json`` emission.

    ``payload`` is the dict the bench saved; its numeric scalars are
    lifted flat into ``"metrics"`` (nested values stay behind — the
    sentinel wants comparable scalars, not trees).
    """
    metrics = {key: value for key, value in (payload or {}).items()
               if isinstance(value, (int, float))
               and not isinstance(value, bool)}
    return {
        "kind": KIND_BENCH,
        "git_sha": git_sha(),
        "bench": name,
        "metrics": metrics,
    }


def append_run_record(run, store=None):
    """Teardown hook: persist one run's history row.

    Never raises — persistence of telemetry must not fail the run that
    produced it.  Returns the stamped record, or None when disabled or
    on error (counted as ``obs.history.append_errors``).
    """
    try:
        store = store if store is not None else HistoryStore()
        return store.append(run_record(run))
    except Exception:
        try:
            from .metrics import get_registry
            get_registry().counter("obs.history.append_errors").inc()
        except Exception:
            pass
        return None


def append_bench_record(name, payload, store=None):
    """Bench hook twin of :func:`append_run_record` (never raises)."""
    try:
        store = store if store is not None else HistoryStore()
        return store.append(bench_record(name, payload))
    except Exception:
        try:
            from .metrics import get_registry
            get_registry().counter("obs.history.append_errors").inc()
        except Exception:
            pass
        return None
