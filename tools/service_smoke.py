"""End-to-end smoke test of the Strober job daemon, as CI runs it.

Boots ``python -m repro.service`` as a real subprocess, then drives it
over the socket API:

1. one job to completion (cold daemon: builds the engine),
2. two *concurrent* jobs — one riding the now-warm engine cache, one
   cold (fresh seed, fresh run journal) — both must finish ``done``
   and the warm one bit-identical to the first,
3. one fault shot through the job API (a worker SIGKILL the replay
   supervisor must absorb: crash reported in the job status, result
   still produced),
4. a clean drain: ``shutdown`` must finish the queue and exit 0.

With ``--trace-dir`` passed to the daemon (as CI does), each job
leaves a Chrome trace behind for the build artifact.

Usage: ``PYTHONPATH=src python tools/service_smoke.py [state_dir]``
"""

import json
import subprocess
import sys


def main(argv):
    state_dir = argv[1] if len(argv) > 1 else "service-state"
    daemon = [sys.executable, "-m", "repro.service",
              "--state-dir", state_dir, "--max-running", "2",
              "--trace-dir", "service-traces"]
    proc = subprocess.Popen(daemon, stdout=subprocess.PIPE, text=True)
    try:
        address = json.loads(proc.stdout.readline())
        print("daemon listening on", address)

        from repro.service import ServiceClient
        spec = dict(design="rocket_mini", workload="towers",
                    sample_size=3, replay_length=32, seed=3)
        with ServiceClient(address, timeout=600.0) as client:
            first = client.wait(client.submit(**spec), timeout_s=600)
            assert first["state"] == "done", first["error"]
            print("cold job:", first["summary"]["wall_seconds"], "s,",
                  "digest", first["digest"])

            warm_id = client.submit(**spec)
            cold_id = client.submit(**dict(spec, seed=11))
            warm = client.wait(warm_id, timeout_s=600)
            cold = client.wait(cold_id, timeout_s=600)
            assert warm["state"] == "done", warm["error"]
            assert cold["state"] == "done", cold["error"]
            assert warm["digest"] == first["digest"], \
                "warm rerun must be bit-identical"
            print("concurrent warm+cold jobs done "
                  f"(warm {warm['summary']['wall_seconds']:.2f}s, "
                  f"cold {cold['summary']['wall_seconds']:.2f}s)")

            faulted = client.wait(
                client.submit(**dict(spec, seed=23, workers=2,
                                     faults=[{"kind": "kill"}])),
                timeout_s=600)
            assert faulted["state"] == "done", faulted["error"]
            assert faulted["crashes"] >= 1, faulted
            print("faulted job survived a worker kill "
                  f"({faulted['crashes']} crash(es) absorbed)")

            status = client.status()
            assert status["jobs"].get("done") == 4, status["jobs"]
            client.shutdown()

        code = proc.wait(timeout=120)
        assert code == 0, f"daemon exited {code} instead of draining"
        print("service smoke OK:",
              {k: v for k, v in sorted(status["metrics"].items())
               if k.startswith("service.")})
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


if __name__ == "__main__":
    sys.exit(main(sys.argv))
