"""End-to-end smoke test of the Strober job daemon, as CI runs it.

Boots ``python -m repro.service`` as a real subprocess, then drives it
over the socket API:

1. one job to completion (cold daemon: builds the engine),
2. two *concurrent* jobs — one riding the now-warm engine cache, one
   cold (fresh seed, fresh run journal) — both must finish ``done``
   and the warm one bit-identical to the first,
3. one fault shot through the job API (a worker SIGKILL the replay
   supervisor must absorb: crash reported in the job status, result
   still produced),
4. two HTTP scrapes of the ``/metrics`` exposition port: both pages
   must satisfy the Prometheus text-format grammar, counters must be
   monotone between scrapes, and the per-job latency histogram must
   have observed every finished job,
5. a clean drain: ``shutdown`` must finish the queue and exit 0.

With ``--trace-dir`` passed to the daemon (as CI does), each job
leaves a Chrome trace behind for the build artifact.

Usage: ``PYTHONPATH=src python tools/service_smoke.py [state_dir]``
"""

import json
import subprocess
import sys
import urllib.request


def scrape(address):
    """One GET /metrics against the daemon's scrape port."""
    url = (f"http://{address['metrics_host']}:"
           f"{address['metrics_port']}/metrics")
    with urllib.request.urlopen(url, timeout=30) as response:
        ctype = response.headers.get("Content-Type", "")
        body = response.read().decode()
    assert ctype.startswith("text/plain"), ctype
    assert "version=0.0.4" in ctype, ctype
    return body


def counter_values(page):
    """{name: value} for every *_total sample line on the page."""
    out = {}
    for line in page.splitlines():
        if line.startswith("#") or " " not in line:
            continue
        name, value = line.rsplit(" ", 1)
        if name.endswith("_total") and "{" not in name:
            out[name] = float(value)
    return out


def check_metrics(first_page, second_page):
    from repro.obs import validate_exposition
    for label, page in (("first", first_page), ("second", second_page)):
        errors = validate_exposition(page)
        assert not errors, f"{label} scrape is not valid Prometheus " \
                           f"text format: {errors}"
    before = counter_values(first_page)
    after = counter_values(second_page)
    assert before, "first scrape exposed no counters"
    for name, value in before.items():
        assert after.get(name, 0.0) >= value, \
            f"counter {name} went backwards: {value} -> {after.get(name)}"
    # The job-latency histogram must have observed every finished job.
    for page, label in ((first_page, "first"), (second_page, "second")):
        assert "repro_service_job_seconds_bucket" in page, \
            f"{label} scrape is missing the job latency histogram"
    count_line = [line for line in second_page.splitlines()
                  if line.startswith("repro_service_job_seconds_count ")]
    assert count_line, "job latency histogram has no _count row"
    observed = float(count_line[0].split()[-1])
    assert observed >= 4, \
        f"job latency histogram saw {observed} job(s), expected >= 4"


def main(argv):
    state_dir = argv[1] if len(argv) > 1 else "service-state"
    daemon = [sys.executable, "-m", "repro.service",
              "--state-dir", state_dir, "--max-running", "2",
              "--trace-dir", "service-traces", "--metrics-port", "0"]
    proc = subprocess.Popen(daemon, stdout=subprocess.PIPE, text=True)
    try:
        address = json.loads(proc.stdout.readline())
        print("daemon listening on", address)
        assert "metrics_port" in address, address

        from repro.service import ServiceClient
        spec = dict(design="rocket_mini", workload="towers",
                    sample_size=3, replay_length=32, seed=3)
        with ServiceClient(address, timeout=600.0) as client:
            first = client.wait(client.submit(**spec), timeout_s=600)
            assert first["state"] == "done", first["error"]
            print("cold job:", first["summary"]["wall_seconds"], "s,",
                  "digest", first["digest"])

            first_page = scrape(address)

            warm_id = client.submit(**spec)
            cold_id = client.submit(**dict(spec, seed=11))
            warm = client.wait(warm_id, timeout_s=600)
            cold = client.wait(cold_id, timeout_s=600)
            assert warm["state"] == "done", warm["error"]
            assert cold["state"] == "done", cold["error"]
            assert warm["digest"] == first["digest"], \
                "warm rerun must be bit-identical"
            print("concurrent warm+cold jobs done "
                  f"(warm {warm['summary']['wall_seconds']:.2f}s, "
                  f"cold {cold['summary']['wall_seconds']:.2f}s)")

            faulted = client.wait(
                client.submit(**dict(spec, seed=23, workers=2,
                                     faults=[{"kind": "kill"}])),
                timeout_s=600)
            assert faulted["state"] == "done", faulted["error"]
            assert faulted["crashes"] >= 1, faulted
            print("faulted job survived a worker kill "
                  f"({faulted['crashes']} crash(es) absorbed)")

            second_page = scrape(address)
            check_metrics(first_page, second_page)
            # The protocol command serves the identical exposition.
            protocol_page = client.metrics()
            from repro.obs import validate_exposition
            assert not validate_exposition(protocol_page)
            print("metrics scrapes OK "
                  f"({len(second_page.splitlines())} line(s), "
                  f"counters monotone, grammar valid)")

            status = client.status()
            assert status["jobs"].get("done") == 4, status["jobs"]
            client.shutdown()

        code = proc.wait(timeout=120)
        assert code == 0, f"daemon exited {code} instead of draining"
        print("service smoke OK:",
              {k: v for k, v in sorted(status["metrics"].items())
               if k.startswith("service.")})
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


if __name__ == "__main__":
    sys.exit(main(sys.argv))
