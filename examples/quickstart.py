"""Quickstart: sample-based energy simulation of a RISC-V SoC.

Runs the Towers-of-Hanoi microbenchmark on the Rocket-like in-order
core, captures random replayable snapshots during the fast FAME1
simulation, replays them on the synthesized gate-level netlist, and
prints the workload's average power with a 99% confidence interval.

    python examples/quickstart.py
"""

from repro.core import run_strober


def main():
    print("Strober quickstart: towers on the Rocket-like core")
    print("=" * 60)
    run = run_strober(
        "rocket_mini",           # design configuration (see CONFIGS)
        "towers",                # benchmark name (see ALL_PROGRAMS)
        sample_size=20,          # snapshots kept by reservoir sampling
        replay_length=64,        # cycles replayed per snapshot (L)
        backend="auto",          # compiled-C RTL simulation if possible
        seed=0,
    )

    result = run.result
    print(f"performance side (FAME1 simulation):")
    print(f"  target cycles          : {result.cycles}")
    print(f"  instructions retired   : {result.instret}")
    print(f"  CPI                    : {result.cpi:.2f}")
    print(f"  snapshots captured     : {len(run.snapshots)} "
          f"(of {result.stats.record_count} recorded)")
    replayed = sum(r.cycles for r in run.replays)
    print(f"  cycles replayed        : {replayed} "
          f"({100 * replayed / result.cycles:.1f}% coverage)")
    print(f"  replay verification    : "
          f"{sum(r.mismatches for r in run.replays)} mismatches")
    print()
    print("energy side (gate-level replay):")
    print(run.energy.summary())
    print()
    print(f"total flow wall time: {run.wall_seconds:.1f} s")


if __name__ == "__main__":
    main()
