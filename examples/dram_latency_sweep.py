"""DRAM timing-model sweep (the paper's Figure 7 experiment).

Measures pointer-chase load-to-load latency across array sizes for
several simulated DRAM latencies, showing the host-decoupled memory
timing model at work: the L1 region is stable while the off-chip
plateau tracks the configured latency.

    python examples/dram_latency_sweep.py
"""

from repro.core import get_circuits
from repro.targets.soc import run_workload
from repro.isa.programs import pointer_chase

SIZES = [512, 1024, 2048, 4096, 8192, 16384]
LATENCIES = [20, 50, 100]


def main():
    circuit, _ = get_circuits("rocket_mini")
    print("pointer-chase load-to-load latency (cycles)")
    print(f"{'array':>8} | " + " | ".join(f"DRAM={lat:>3}" for lat in
                                          LATENCIES))
    print("-" * 46)
    for size in SIZES:
        row = []
        for latency in LATENCIES:
            result = run_workload(
                circuit, pointer_chase(array_bytes=size, loads=192),
                max_cycles=3_000_000, mem_latency=latency,
                backend="auto")
            assert result.passed
            row.append(result.htif.perf_log[-1] / 16.0)
        marker = "  <- D$ capacity" if size == 4096 else ""
        print(f"{size:>6} B | " + " | ".join(f"{v:8.1f}" for v in row)
              + marker)
    print()
    print("the in-cache region is latency-insensitive; beyond the 4 KiB")
    print("D$ the measured latency tracks the simulated DRAM latency.")


if __name__ == "__main__":
    main()
