"""Design-space exploration: Rocket vs BOOM-1w vs BOOM-2w.

The paper's headline use case (Section VI): evaluate performance,
power, and energy of multiple microarchitectures on the same workloads,
fast enough to keep the designer in the loop.  Prints a Figure-9b-style
CPI / power / EPI comparison.

    python examples/design_space_exploration.py
"""

from repro.core import run_strober

DESIGNS = ["rocket_mini", "boom-1w_mini", "boom-2w_mini"]
WORKLOADS = {
    "coremark_lite": {"iterations": 2},
    "boot": {},
}


def main():
    print("design-space exploration (CPI / power / EPI)")
    header = (f"{'workload':<16}{'design':<16}{'CPI':>6}"
              f"{'core mW':>12}{'DRAM mW':>9}{'EPI nJ':>9}")
    print(header)
    print("-" * len(header))
    summary = {}
    for workload, kwargs in WORKLOADS.items():
        for design in DESIGNS:
            run = run_strober(design, workload, workload_kwargs=kwargs,
                              sample_size=16, replay_length=64,
                              backend="auto", seed=1)
            e = run.energy
            summary[(workload, design)] = e
            print(f"{workload:<16}{design:<16}{e.cpi:>6.2f}"
                  f"{e.power.mean:>9.2f}±{e.power.half_width:<4.2f}"
                  f"{e.dram_power_mw:>7.1f}{e.epi_nj:>9.3f}")
    print()
    cm = {d: summary[("coremark_lite", d)] for d in DESIGNS}
    fastest = min(DESIGNS, key=lambda d: cm[d].cpi)
    frugal = min(DESIGNS, key=lambda d: cm[d].epi_nj)
    print(f"fastest on coremark_lite          : {fastest}")
    print(f"most energy-efficient (EPI)       : {frugal}")
    print("(paper's finding: the wide OoO core wins on speed, the "
          "in-order core on energy efficiency)")


if __name__ == "__main__":
    main()
