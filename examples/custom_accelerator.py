"""Energy simulation of *arbitrary RTL*: a custom accelerator.

The paper's generality claim: Strober applies to any RTL the hardware
construction language can express — "including application-specific
accelerators" — not just processors.  This example builds a small
dot-product accelerator with a designer-annotated retimed MAC pipeline,
pushes it through the complete flow (FAME1 transform, reservoir
snapshot sampling, synthesis, formal matching, gate-level replay with
retimed-unit warm-up), and reports its average power with a confidence
interval.

    python examples/custom_accelerator.py
"""

import random

from repro.hdl import Module, elaborate, mux
from repro.fame import Fame1Simulator, Endpoint
from repro.core import ReplayEngine, estimate_energy
from repro.targets.common import PipelinedMultiplier


class DotProductAccelerator(Module):
    """Streams (a, b) pairs and accumulates a*b through a retimed MAC."""

    def build(self):
        in_valid = self.input("in_valid", 1)
        a = self.input("a", 16)
        b = self.input("b", 16)
        clear = self.input("clear", 1)

        mac = self.instance(PipelinedMultiplier(), "mac")
        mac["valid"] <<= in_valid
        mac["a"] <<= a.pad(32)
        mac["b"] <<= b.pad(32)
        mac["funct3"] <<= 0

        acc = self.reg("acc", 48)
        count = self.reg("count", 32)
        with self.when(clear):
            acc <<= 0
            count <<= 0
        with self.elsewhen(mac["valid_out"]):
            acc <<= (acc + mac["result"].pad(48)).trunc(48)
            count <<= count + 1
        self.output("acc_lo", 32, acc[31:0])
        self.output("acc_hi", 16, acc[47:32])
        self.output("done_count", 32, count)


class StreamDriver(Endpoint):
    """Host endpoint feeding a random-but-reproducible vector stream."""

    def __init__(self, seed=0, duty=0.7):
        self.seed = seed
        self.duty = duty
        self.reset()

    def reset(self):
        self._rng = random.Random(self.seed)

    def tick(self, outputs):
        if self._rng.random() < self.duty:
            return {"in_valid": 1, "a": self._rng.getrandbits(16),
                    "b": self._rng.getrandbits(16), "clear": 0}
        return {"in_valid": 0, "a": 0, "b": 0, "clear": 0}


def main():
    print("custom accelerator through the Strober flow")
    print("=" * 60)
    sim_circuit = elaborate(DotProductAccelerator(), name="dotp")
    target_circuit = elaborate(DotProductAccelerator(), name="dotp")

    # performance side: FAME1-simulate and sample snapshots
    fame = Fame1Simulator(sim_circuit, [StreamDriver(seed=7)],
                          sample_size=15, replay_length=48,
                          backend="python", seed=2)
    fame.run(max_cycles=6000)
    snaps = fame.snapshots
    print(f"simulated {fame.stats.target_cycles} cycles, captured "
          f"{len(snaps)} snapshots "
          f"({fame.stats.record_count} recorded)")

    # energy side: synthesize, match, replay with MAC warm-up
    engine = ReplayEngine(target_circuit)
    stats = engine.flow.netlist.stats()
    print(f"synthesized: {stats['gates']} gates, {stats['dffs']} DFFs")
    retimed = engine.flow.name_map.retimed
    print(f"retimed blocks: {[(b.prefix, b.latency) for b in retimed]}")

    replays = engine.replay_all(snaps)
    mismatches = sum(r.mismatches for r in replays)
    print(f"replayed {len(replays)} snapshots, {mismatches} mismatches")

    energy = estimate_energy(replays,
                             total_cycles=fame.stats.target_cycles,
                             replay_length=48,
                             workload="vector stream",
                             design="dot-product accelerator")
    print()
    print(f"average power: {energy.power} mW")
    for group, est in sorted(energy.breakdown.items(),
                             key=lambda kv: -kv[1].mean):
        print(f"  {group:<20s} {est.mean:8.3f} mW ± {est.half_width:.3f}")


if __name__ == "__main__":
    main()
